#include "core/model_fitter.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/lbfgsb.h"
#include "util/rng.h"

namespace pollux {
namespace {

constexpr double kLogEpsilon = 1e-8;

ThroughputParams UnpackParams(const std::vector<double>& x) {
  ThroughputParams params;
  params.alpha_grad = x[0];
  params.beta_grad = x[1];
  params.alpha_sync_local = x[2];
  params.beta_sync_local = x[3];
  params.alpha_sync_node = x[4];
  params.beta_sync_node = x[5];
  params.gamma = x[6];
  return params;
}

// Least-squares line fit of iter_time against batch size over single-GPU
// observations, used to seed (alpha_grad, beta_grad).
void SeedGradParams(const std::vector<ThroughputObservation>& observations, double* alpha,
                    double* beta) {
  double sum_m = 0.0;
  double sum_t = 0.0;
  double sum_mm = 0.0;
  double sum_mt = 0.0;
  int n = 0;
  for (const auto& obs : observations) {
    if (obs.placement.num_gpus != 1) {
      continue;
    }
    const double m = static_cast<double>(obs.batch_size);
    sum_m += m;
    sum_t += obs.iter_time;
    sum_mm += m * m;
    sum_mt += m * obs.iter_time;
    ++n;
  }
  if (n == 0) {
    // Fall back to per-GPU normalized samples from any placement.
    for (const auto& obs : observations) {
      const double m = static_cast<double>(obs.batch_size) / obs.placement.num_gpus;
      sum_m += m;
      sum_t += obs.iter_time;
      sum_mm += m * m;
      sum_mt += m * obs.iter_time;
      ++n;
    }
  }
  const double denom = static_cast<double>(n) * sum_mm - sum_m * sum_m;
  if (n >= 2 && std::fabs(denom) > 1e-12) {
    *beta = std::max((static_cast<double>(n) * sum_mt - sum_m * sum_t) / denom, 1e-8);
    *alpha = std::max((sum_t - *beta * sum_m) / static_cast<double>(n), 0.0);
  } else if (n >= 1) {
    *alpha = 0.0;
    *beta = std::max(sum_t / std::max(sum_m, 1.0), 1e-8);
  } else {
    *alpha = 0.01;
    *beta = 1e-4;
  }
}

}  // namespace

double ThroughputRmsle(const ThroughputParams& params,
                       const std::vector<ThroughputObservation>& observations) {
  if (observations.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& obs : observations) {
    const double predicted =
        IterTime(params, obs.placement, static_cast<double>(obs.batch_size));
    const double diff = std::log(predicted + kLogEpsilon) - std::log(obs.iter_time + kLogEpsilon);
    total += diff * diff;
  }
  return std::sqrt(total / static_cast<double>(observations.size()));
}

namespace {

double MedianOf(std::vector<double> values) {
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<long>(mid), values.end());
  double median = values[mid];
  if (values.size() % 2 == 0) {
    const auto lower = std::max_element(values.begin(), values.begin() + static_cast<long>(mid));
    median = 0.5 * (median + *lower);
  }
  return median;
}

// One bounded multi-start L-BFGS fit over the given observations.
FitResult FitOnce(const std::vector<ThroughputObservation>& observations,
                  const FitOptions& options) {
  FitResult result;

  // Index layout: [alpha_grad, beta_grad, alpha_loc, beta_loc, alpha_node,
  // beta_node, gamma].
  std::vector<double> lower(7, 0.0);
  std::vector<double> upper = {options.max_alpha, options.max_beta, options.max_alpha,
                               options.max_beta,  options.max_alpha, options.max_beta,
                               10.0};
  lower[6] = 1.0;
  // Gradient computation can never be free: without this floor, a job whose
  // observations all share one GPU count can have its entire iteration time
  // attributed to synchronization, predicting infinite single-GPU throughput.
  lower[1] = 1e-8;

  // Prior-driven exploration pins (Sec. 4.1).
  if (options.max_gpus_seen <= 1) {
    upper[2] = upper[3] = upper[4] = upper[5] = 0.0;
  }
  if (options.max_nodes_seen <= 1) {
    upper[4] = upper[5] = 0.0;
  }
  if (options.max_gpus_seen <= 2) {
    upper[3] = upper[5] = 0.0;
  }

  BoundedProblem problem;
  problem.lower = lower;
  problem.upper = upper;
  // The tiny ridge on the synchronization parameters resolves the
  // attribution ambiguity when the data cannot distinguish compute from sync
  // time (e.g. all observations share one GPU count): ties break toward
  // compute, keeping extrapolations to other GPU counts sane.
  constexpr double kSyncRidge = 1e-3;
  problem.objective = [&](const std::vector<double>& x) {
    return ThroughputRmsle(UnpackParams(x), observations) +
           kSyncRidge * (x[2] + x[3] + x[4] + x[5]);
  };

  double alpha_seed = 0.0;
  double beta_seed = 0.0;
  SeedGradParams(observations, &alpha_seed, &beta_seed);
  std::vector<double> x0 = {std::min(alpha_seed, upper[0]),
                            std::min(beta_seed, upper[1]),
                            std::min(0.1, upper[2]),
                            std::min(0.01, upper[3]),
                            std::min(0.2, upper[4]),
                            std::min(0.01, upper[5]),
                            1.5};

  LbfgsbOptions lbfgs_options;
  lbfgs_options.max_iterations = 80;
  Rng rng(options.seed);
  const LbfgsbResult fit =
      MinimizeBoundedMultiStart(problem, x0, options.multi_starts, rng, lbfgs_options);
  result.params = UnpackParams(fit.x);
  result.rmsle = fit.value;
  result.evaluations = fit.evaluations;
  return result;
}

}  // namespace

namespace {

struct FitMetrics {
  obs::Counter* calls;
  obs::Counter* evaluations;
  obs::Counter* outliers_rejected;
  obs::Histogram* rmsle;

  static const FitMetrics& Get() {
    static const FitMetrics metrics;
    return metrics;
  }

 private:
  FitMetrics() {
    auto& registry = obs::MetricsRegistry::Global();
    calls = registry.GetCounter("fit.calls");
    evaluations = registry.GetCounter("fit.evaluations");
    outliers_rejected = registry.GetCounter("fit.outliers_rejected");
    rmsle = registry.GetHistogram("fit.rmsle");
  }
};

FitResult FitThroughputParamsImpl(const std::vector<ThroughputObservation>& observations,
                                  const FitOptions& options) {
  FitResult result;
  if (observations.empty()) {
    return result;
  }
  result = FitOnce(observations, options);
  if (options.outlier_mad_threshold <= 0.0 || observations.size() < 4) {
    return result;
  }

  // Robust pass: straggler-inflated samples sit far above the surface the
  // bulk of the data agrees on. Reject by median absolute deviation of the
  // log-residuals and refit on the survivors.
  std::vector<double> residuals;
  residuals.reserve(observations.size());
  for (const auto& obs : observations) {
    const double predicted =
        IterTime(result.params, obs.placement, static_cast<double>(obs.batch_size));
    residuals.push_back(std::log(obs.iter_time + kLogEpsilon) -
                        std::log(predicted + kLogEpsilon));
  }
  const double median = MedianOf(residuals);
  std::vector<double> deviations;
  deviations.reserve(residuals.size());
  for (double r : residuals) {
    deviations.push_back(std::fabs(r - median));
  }
  const double mad_sigma = 1.4826 * MedianOf(deviations);
  if (mad_sigma < 1e-9) {
    return result;  // Residuals are essentially identical; nothing to reject.
  }
  std::vector<ThroughputObservation> kept;
  kept.reserve(observations.size());
  for (size_t i = 0; i < observations.size(); ++i) {
    if (std::fabs(residuals[i] - median) <= options.outlier_mad_threshold * mad_sigma) {
      kept.push_back(observations[i]);
    }
  }
  if (kept.size() == observations.size() || kept.size() < 3) {
    return result;
  }
  FitResult refit = FitOnce(kept, options);
  refit.evaluations += result.evaluations;
  refit.outliers_rejected = static_cast<int>(observations.size() - kept.size());
  return refit;
}

}  // namespace

FitResult FitThroughputParams(const std::vector<ThroughputObservation>& observations,
                              const FitOptions& options) {
  TRACE_SCOPE("fit_throughput");
  const FitResult result = FitThroughputParamsImpl(observations, options);
  if (obs::MetricsRegistry::Global().enabled()) {
    const FitMetrics& metrics = FitMetrics::Get();
    metrics.calls->Add();
    metrics.evaluations->Add(static_cast<uint64_t>(std::max(0, result.evaluations)));
    metrics.outliers_rejected->Add(static_cast<uint64_t>(std::max(0, result.outliers_rejected)));
    if (std::isfinite(result.rmsle)) {
      metrics.rmsle->Record(result.rmsle);
    }
  }
  return result;
}

}  // namespace pollux
