// PolluxAgent (Sec. 4.1): the per-job component.
//
// The agent observes every training iteration (placement, batch size,
// iteration time) and the job's gradient statistics; it periodically re-fits
// theta_sys to the profiled throughput data, combines it with the smoothed
// gradient noise scale into the job's GOODPUT function, reports that function
// to PolluxSched, and tunes the job's batch size (Eqn. 13) and AdaScale
// learning rate for its currently allocated resources.

#ifndef POLLUX_CORE_AGENT_H_
#define POLLUX_CORE_AGENT_H_

#include <cstdint>
#include <map>
#include <tuple>

#include "core/adascale.h"
#include "core/gns.h"
#include "core/goodput.h"
#include "core/model_fitter.h"
#include "core/types.h"
#include "util/stats.h"

namespace pollux {

struct AgentConfig {
  double gns_smoothing = 0.95;
  int fit_multi_starts = 2;
  uint64_t seed = 1;
  // Robust estimation for degraded clusters: MAD-reject straggler-inflated
  // iteration-time observations before the RMSLE fit, and treat fits whose
  // RMSLE exceeds max_fit_rmsle as diverged. Non-finite fits are always
  // rejected; a rejected fit keeps the previous theta_sys.
  bool robust_fitting = false;
  double outlier_mad_threshold = 3.5;
  double max_fit_rmsle = 1.5;
};

// The goodput function handed to PolluxSched: (theta_sys, phi_t, m0) plus the
// job's feasibility limits and exploration cap.
struct AgentReport {
  uint64_t job_id = 0;
  GoodputModel model;
  BatchLimits limits;
  // At most twice the most GPUs the job has ever held (Sec. 4.1).
  int max_gpus_cap = 1;
};

class PolluxAgent {
 public:
  PolluxAgent(uint64_t job_id, long base_batch_size, double base_lr, BatchLimits limits,
              AgentConfig config = {});

  // --- Profiling hooks, called from the training loop / simulator. ---

  // One completed training iteration at the given configuration.
  void RecordIteration(const Placement& placement, long batch_size, double iter_time);

  // Gradient moment statistics for an iteration (from either GNS estimator).
  void RecordGradientStats(const GnsSample& sample);

  // The job was (re)started with a new allocation; tracks lifetime maxima
  // that drive prior-driven exploration.
  void NotifyAllocation(const Placement& placement);

  // --- Periodic work (Sec. 4.3). ---

  // Re-fits theta_sys to all throughput data collected so far and returns the
  // up-to-date goodput function for PolluxSched.
  AgentReport MakeReport();

  // Eqn. 13: the most efficient batch size for the given placement under the
  // current goodput model (call after MakeReport for fresh parameters).
  GoodputModel::BatchChoice TuneBatchSize(const Placement& placement) const;

  // AdaScale learning rate (Eqn. 5) at the given batch size.
  double LearningRateAt(long batch_size) const;

  // Full mutable agent state for checkpoint/restore: the profiled
  // observation table, the smoothed GNS moments, the currently fitted
  // goodput model, and the exploration/refit bookkeeping. Construction
  // parameters (job id, limits, config) are not part of the state — a
  // restored agent must be constructed with the same arguments first.
  struct State {
    struct Observation {
      int gpus = 0;
      int node_regime = 0;
      long batch_bucket = 0;
      RunningStats::State iter_time;
      RunningStats::State batch_size;
    };
    std::vector<Observation> observations;
    GnsTracker::State tracker;
    ThroughputParams model_params;
    double model_phi = 0.0;
    long model_base_batch = 1;
    int max_gpus_seen = 0;
    int max_nodes_seen = 0;
    size_t last_fit_configs = 0;
    int fits_rejected = 0;
    int outliers_rejected = 0;
  };
  State GetState() const;
  void SetState(const State& state);

  const GoodputModel& model() const { return model_; }
  double phi() const { return tracker_.Phi(); }
  // Diagnostics for the robust-estimation path.
  int fits_rejected() const { return fits_rejected_; }
  int outliers_rejected() const { return outliers_rejected_; }
  const BatchLimits& limits() const { return limits_; }
  int max_gpus_seen() const { return max_gpus_seen_; }
  int max_nodes_seen() const { return max_nodes_seen_; }
  size_t distinct_configurations() const { return observations_.size(); }
  uint64_t job_id() const { return job_id_; }

 private:
  uint64_t job_id_;
  long base_batch_size_;
  double base_lr_;
  BatchLimits limits_;
  AgentConfig config_;

  // Profiled iteration times keyed by (K, N-regime, geometric batch-size
  // bucket); repeated samples of one configuration are averaged. Bucketing
  // the batch size keeps the configuration count bounded while the agent
  // continuously re-tunes m, which in turn bounds how often theta_sys must
  // be re-fitted.
  struct ConfigStats {
    RunningStats iter_time;
    RunningStats batch_size;
  };
  std::map<std::tuple<int, int, long>, ConfigStats> observations_;
  GnsTracker tracker_;
  GoodputModel model_;
  // Zero until the first allocation: the exploration cap max(1, 2x seen)
  // then starts at 1, so every job begins on a single GPU (Sec. 3) and is
  // guaranteed to collect K=1 observations before scaling out.
  int max_gpus_seen_ = 0;
  int max_nodes_seen_ = 0;
  // Re-fitting is skipped while the set of observed configurations is
  // unchanged (the fit would barely move; phi is still refreshed every call).
  size_t last_fit_configs_ = 0;
  int fits_rejected_ = 0;
  int outliers_rejected_ = 0;
};

}  // namespace pollux

#endif  // POLLUX_CORE_AGENT_H_
