#include "core/session.h"

#include <algorithm>

namespace pollux {

PolluxSession::PolluxSession(SessionOptions options)
    : options_(options),
      agent_(options.job_id, options.base_batch_size, options.base_lr, options.limits,
             options.agent),
      adascale_(options.base_batch_size, options.base_lr, options.agent.gns_smoothing),
      recommended_batch_(options.base_batch_size) {}

void PolluxSession::SetPlacement(const Placement& placement) {
  placement_ = placement;
  agent_.NotifyAllocation(placement);
  // The previous gradient came from a different effective configuration;
  // differencing across the boundary would mix distributions.
  has_previous_gradient_ = false;
}

void PolluxSession::BeginStep() {
  step_start_ = std::chrono::steady_clock::now();
  timing_ = true;
}

PolluxSession::StepDecision PolluxSession::EndStep(
    std::span<const std::vector<double>> replica_grads, long batch_size) {
  double seconds = 0.0;
  if (timing_) {
    seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - step_start_).count();
    timing_ = false;
  }
  return EndStepWithDuration(replica_grads, batch_size, seconds);
}

PolluxSession::StepDecision PolluxSession::EndStepWithDuration(
    std::span<const std::vector<double>> replica_grads, long batch_size, double step_seconds) {
  if (step_seconds > 0.0 && placement_.num_gpus > 0) {
    agent_.RecordIteration(placement_, batch_size, step_seconds);
  }

  // Estimator selection (Sec. 3.1): per-replica sample variance with >= 2
  // workers, consecutive-gradient differencing with one.
  std::optional<GnsSample> sample;
  if (replica_grads.size() >= 2) {
    sample = EstimateGnsFromReplicas(replica_grads, static_cast<double>(batch_size));
  } else if (replica_grads.size() == 1) {
    if (has_previous_gradient_) {
      sample = EstimateGnsDifferenced(previous_gradient_, replica_grads[0],
                                      static_cast<double>(batch_size));
    }
    previous_gradient_ = replica_grads[0];
    has_previous_gradient_ = true;
  }

  StepDecision decision;
  if (sample.has_value()) {
    agent_.RecordGradientStats(*sample);
    decision.gain = adascale_.Update(*sample, batch_size);
  } else {
    decision.gain = adascale_.GainAt(batch_size);
  }
  decision.learning_rate = adascale_.LearningRateAt(batch_size);

  if (options_.report_every_steps > 0 &&
      adascale_.steps() % options_.report_every_steps == 0 && placement_.num_gpus > 0) {
    agent_.MakeReport();
    const auto choice = agent_.TuneBatchSize(placement_);
    if (choice.batch_size > 0) {
      recommended_batch_ = choice.batch_size;
    }
    decision.reported = true;
  }
  decision.recommended_batch_size = std::max(recommended_batch_, options_.base_batch_size);
  return decision;
}

}  // namespace pollux
