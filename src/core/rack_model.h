// Rack-level extension of the throughput model.
//
// The paper notes (Sec. 3.2): "our model for T_sync can be extended to
// account for rack-level locality by adding a third pair of parameters."
// This module implements that extension: synchronization time has three
// regimes — co-located on one node, spread across nodes within one rack, and
// spread across racks — each with its own (alpha, beta) pair. The combined
// iteration time uses the same gamma-interpolation as Eqn. 11, and the same
// RMSLE + bounded L-BFGS pipeline fits the now 9-parameter model, including
// the analogous prior-driven exploration pins.

#ifndef POLLUX_CORE_RACK_MODEL_H_
#define POLLUX_CORE_RACK_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/throughput_model.h"

namespace pollux {

// Placement summary with rack awareness.
struct RackPlacement {
  int num_gpus = 0;   // K: total GPUs.
  int num_nodes = 0;  // N: nodes contributing at least one GPU.
  int num_racks = 0;  // R: racks contributing at least one node.

  bool operator==(const RackPlacement&) const = default;

  Placement Flatten() const { return Placement{num_gpus, num_nodes}; }
};

// theta_sys extended with the rack tier.
struct RackThroughputParams {
  double alpha_grad = 0.0;
  double beta_grad = 0.0;
  double alpha_sync_local = 0.0;  // N = 1.
  double beta_sync_local = 0.0;
  double alpha_sync_node = 0.0;   // N >= 2, R = 1.
  double beta_sync_node = 0.0;
  double alpha_sync_rack = 0.0;   // R >= 2.
  double beta_sync_rack = 0.0;
  double gamma = 1.0;
};

double RackGradTime(const RackThroughputParams& params, const RackPlacement& placement,
                    double batch_size);
double RackSyncTime(const RackThroughputParams& params, const RackPlacement& placement);
double RackIterTime(const RackThroughputParams& params, const RackPlacement& placement,
                    double batch_size);
double RackModelThroughput(const RackThroughputParams& params, const RackPlacement& placement,
                           double batch_size);

struct RackThroughputObservation {
  RackPlacement placement;
  long batch_size = 0;
  double iter_time = 0.0;
};

struct RackFitOptions {
  int max_gpus_seen = 1;
  int max_nodes_seen = 1;
  int max_racks_seen = 1;
  int multi_starts = 3;
  uint64_t seed = 1;
  double max_alpha = 100.0;
  double max_beta = 10.0;
};

struct RackFitResult {
  RackThroughputParams params;
  double rmsle = 0.0;
  int evaluations = 0;
};

double RackThroughputRmsle(const RackThroughputParams& params,
                           const std::vector<RackThroughputObservation>& observations);

RackFitResult FitRackThroughputParams(
    const std::vector<RackThroughputObservation>& observations,
    const RackFitOptions& options = {});

}  // namespace pollux

#endif  // POLLUX_CORE_RACK_MODEL_H_
