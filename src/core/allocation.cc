#include "core/allocation.h"

#include <cstddef>

namespace pollux {

ClusterSpec ClusterSpec::Homogeneous(int nodes, int gpus) {
  ClusterSpec spec;
  spec.gpus_per_node.assign(static_cast<size_t>(nodes), gpus);
  return spec;
}

AllocationMatrix::AllocationMatrix(size_t num_jobs, size_t num_nodes)
    : num_jobs_(num_jobs), num_nodes_(num_nodes), cells_(num_jobs * num_nodes, 0) {}

std::vector<int> AllocationMatrix::Row(size_t job) const {
  std::vector<int> row(num_nodes_);
  for (size_t n = 0; n < num_nodes_; ++n) {
    row[n] = at(job, n);
  }
  return row;
}

void AllocationMatrix::SetRow(size_t job, const std::vector<int>& row) {
  for (size_t n = 0; n < num_nodes_ && n < row.size(); ++n) {
    at(job, n) = row[n];
  }
}

Placement AllocationMatrix::JobPlacement(size_t job) const {
  Placement placement;
  for (size_t n = 0; n < num_nodes_; ++n) {
    const int gpus = at(job, n);
    if (gpus > 0) {
      placement.num_gpus += gpus;
      ++placement.num_nodes;
    }
  }
  return placement;
}

std::vector<int> AllocationMatrix::NodeUsage() const {
  std::vector<int> usage(num_nodes_, 0);
  for (size_t j = 0; j < num_jobs_; ++j) {
    for (size_t n = 0; n < num_nodes_; ++n) {
      usage[n] += at(j, n);
    }
  }
  return usage;
}

bool AllocationMatrix::WithinCapacity(const ClusterSpec& cluster) const {
  const std::vector<int> usage = NodeUsage();
  for (size_t n = 0; n < usage.size(); ++n) {
    if (usage[n] > cluster.gpus_per_node[n]) {
      return false;
    }
  }
  return true;
}

}  // namespace pollux
