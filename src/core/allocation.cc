#include "core/allocation.h"

#include <cstddef>

namespace pollux {

ClusterSpec ClusterSpec::Homogeneous(int nodes, int gpus) {
  ClusterSpec spec;
  spec.gpus_per_node.assign(static_cast<size_t>(nodes), gpus);
  return spec;
}

int ClusterSpec::NumRacks() const {
  if (!HasTopology()) {
    return NumNodes() > 0 ? 1 : 0;
  }
  int best = -1;
  for (int r : rack_of_node) {
    best = best > r ? best : r;
  }
  return best + 1;
}

ClusterSpec ClusterSpec::WithoutTopology() const {
  ClusterSpec flat;
  flat.gpus_per_node = gpus_per_node;
  return flat;
}

AllocationMatrix::AllocationMatrix(size_t num_jobs, size_t num_nodes)
    : num_jobs_(num_jobs), num_nodes_(num_nodes), cells_(num_jobs * num_nodes, 0) {}

std::vector<int> AllocationMatrix::Row(size_t job) const {
  std::vector<int> row(num_nodes_);
  for (size_t n = 0; n < num_nodes_; ++n) {
    row[n] = at(job, n);
  }
  return row;
}

void AllocationMatrix::SetRow(size_t job, const std::vector<int>& row) {
  for (size_t n = 0; n < num_nodes_ && n < row.size(); ++n) {
    at(job, n) = row[n];
  }
}

Placement AllocationMatrix::JobPlacement(size_t job) const {
  Placement placement;
  for (size_t n = 0; n < num_nodes_; ++n) {
    const int gpus = at(job, n);
    if (gpus > 0) {
      placement.num_gpus += gpus;
      ++placement.num_nodes;
    }
  }
  return placement;
}

RackPlacement AllocationMatrix::JobRackPlacement(size_t job, const ClusterSpec& cluster) const {
  RackPlacement placement;
  // Racks are dense ids starting at 0; a small bitmap-on-vector keeps this
  // allocation-free for the flat (single-rack) case.
  std::vector<char> rack_seen;
  for (size_t n = 0; n < num_nodes_; ++n) {
    const int gpus = at(job, n);
    if (gpus <= 0) {
      continue;
    }
    placement.num_gpus += gpus;
    ++placement.num_nodes;
    const int rack = cluster.RackOf(static_cast<int>(n));
    if (rack >= static_cast<int>(rack_seen.size())) {
      rack_seen.resize(static_cast<size_t>(rack) + 1, 0);
    }
    if (!rack_seen[rack]) {
      rack_seen[rack] = 1;
      ++placement.num_racks;
    }
  }
  return placement;
}

double AllocationMatrix::JobMinGpuScale(size_t job, const ClusterSpec& cluster) const {
  if (!cluster.HasTopology()) {
    return 1.0;
  }
  double scale = 1.0;
  bool any = false;
  for (size_t n = 0; n < num_nodes_; ++n) {
    if (at(job, n) <= 0) {
      continue;
    }
    const double node_scale = cluster.GpuScaleOf(static_cast<int>(n));
    scale = any ? (node_scale < scale ? node_scale : scale) : node_scale;
    any = true;
  }
  return any ? scale : 1.0;
}

std::vector<int> AllocationMatrix::NodeUsage() const {
  std::vector<int> usage(num_nodes_, 0);
  for (size_t j = 0; j < num_jobs_; ++j) {
    for (size_t n = 0; n < num_nodes_; ++n) {
      usage[n] += at(j, n);
    }
  }
  return usage;
}

bool AllocationMatrix::WithinCapacity(const ClusterSpec& cluster) const {
  const std::vector<int> usage = NodeUsage();
  for (size_t n = 0; n < usage.size(); ++n) {
    if (usage[n] > cluster.gpus_per_node[n]) {
      return false;
    }
  }
  return true;
}

}  // namespace pollux
