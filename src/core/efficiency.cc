#include "core/efficiency.h"

#include <algorithm>

namespace pollux {

double GradientNoiseScale(double m0, double grad_variance, double grad_sqnorm) {
  if (grad_sqnorm <= 0.0 || m0 <= 0.0) {
    return 0.0;
  }
  const double variance = std::max(grad_variance, 0.0);
  return m0 * variance / grad_sqnorm;
}

double StatisticalEfficiency(double phi, double m0, double m) {
  const double noise = std::max(phi, 0.0);
  return (noise + m0) / (noise + m);
}

double AdaScaleGain(double phi, double m0, double m) {
  const double noise = std::max(phi, 0.0);
  return (noise / m0 + 1.0) / (noise / m + 1.0);
}

}  // namespace pollux
