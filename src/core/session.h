// PolluxSession: a single-object integration facade for training loops.
//
// PolluxAgent, the GNS estimators, and AdaScale each expose one piece of the
// paper's job-level machinery; real integrations (Sec. 4.3 embeds the agent
// into PyTorch) need all of them wired together with timing measurement and
// estimator selection. PolluxSession is that wiring: a training loop calls
//
//   session.BeginStep();
//   ... compute per-replica gradients ...
//   PolluxSession::StepDecision d = session.EndStep(replica_grads);
//   optimizer.Step(params, avg_grad, d.learning_rate);
//
// and the session measures wall-clock iteration time, picks the right
// gradient-noise estimator (multi-replica when >= 2 replicas, differenced
// otherwise), maintains AdaScale state, feeds the PolluxAgent, and surfaces
// the batch size the goodput model currently recommends.

#ifndef POLLUX_CORE_SESSION_H_
#define POLLUX_CORE_SESSION_H_

#include <chrono>
#include <span>
#include <vector>

#include "core/agent.h"

namespace pollux {

struct SessionOptions {
  uint64_t job_id = 0;
  long base_batch_size = 32;  // m0.
  double base_lr = 0.05;      // eta_0.
  BatchLimits limits;
  // How often (in steps) EndStep refreshes the agent report and the
  // recommended batch size.
  long report_every_steps = 50;
  AgentConfig agent;
};

class PolluxSession {
 public:
  explicit PolluxSession(SessionOptions options);

  // Declares the resources the loop currently runs on (call at start and on
  // every re-allocation).
  void SetPlacement(const Placement& placement);

  // Marks the beginning of one training step (starts the step timer).
  void BeginStep();

  struct StepDecision {
    // AdaScale learning rate for the batch size that was just processed.
    double learning_rate = 0.0;
    // The AdaScale gain credited for this step.
    double gain = 1.0;
    // Goodput-recommended batch size for the current placement; the loop may
    // adopt it for subsequent steps (refreshed every report interval).
    long recommended_batch_size = 0;
    // True when this EndStep refreshed the agent report.
    bool reported = false;
  };

  // Completes one step: `replica_grads` holds each worker's gradient for the
  // `batch_size` examples just processed. Uses the wall clock started by
  // BeginStep (a manual duration can be supplied for testing/replay).
  StepDecision EndStep(std::span<const std::vector<double>> replica_grads, long batch_size);
  StepDecision EndStepWithDuration(std::span<const std::vector<double>> replica_grads,
                                   long batch_size, double step_seconds);

  // The goodput function to forward to PolluxSched.
  AgentReport Report() { return agent_.MakeReport(); }

  const PolluxAgent& agent() const { return agent_; }
  const AdaScaleState& adascale() const { return adascale_; }
  long steps() const { return adascale_.steps(); }
  double phi() const { return adascale_.phi(); }

 private:
  SessionOptions options_;
  PolluxAgent agent_;
  AdaScaleState adascale_;
  Placement placement_;
  std::vector<double> previous_gradient_;
  bool has_previous_gradient_ = false;
  long recommended_batch_ = 0;
  std::chrono::steady_clock::time_point step_start_;
  bool timing_ = false;
};

}  // namespace pollux

#endif  // POLLUX_CORE_SESSION_H_
