#include "core/goodput.h"

#include "core/efficiency.h"
#include "optim/golden_section.h"

namespace pollux {

double GoodputModel::ThroughputAt(const Placement& placement, double batch_size) const {
  return ModelThroughput(params_, placement, batch_size);
}

double GoodputModel::EfficiencyAt(double batch_size) const {
  return StatisticalEfficiency(phi_, static_cast<double>(base_batch_size_), batch_size);
}

double GoodputModel::GoodputAt(const Placement& placement, double batch_size) const {
  return ThroughputAt(placement, batch_size) * EfficiencyAt(batch_size);
}

GoodputModel::BatchChoice GoodputModel::OptimizeBatchSize(const Placement& placement,
                                                          const BatchLimits& limits) const {
  BatchChoice choice;
  if (placement.num_gpus <= 0) {
    return choice;
  }
  const long lo = limits.min_batch;
  const long hi = limits.MaxFeasible(placement.num_gpus);
  const auto result = GoldenSectionMaximizeInt(
      [&](long m) { return GoodputAt(placement, static_cast<double>(m)); }, lo, hi);
  choice.batch_size = result.best_x;
  choice.goodput = result.value;
  choice.throughput = ThroughputAt(placement, static_cast<double>(choice.batch_size));
  choice.efficiency = EfficiencyAt(static_cast<double>(choice.batch_size));
  return choice;
}

double Speedup(const GoodputModel& model, const Placement& placement, const BatchLimits& limits) {
  if (placement.num_gpus <= 0) {
    return 0.0;
  }
  const auto numerator = model.OptimizeBatchSize(placement, limits);
  const auto denominator = model.OptimizeBatchSize(Placement{1, 1}, limits);
  if (denominator.goodput <= 0.0) {
    // Degenerate model (e.g. no single-GPU data yet): treat any allocation as
    // merely neutral so the scheduler can still run the job and collect the
    // observations needed to fix the model.
    return 1.0;
  }
  return numerator.goodput / denominator.goodput;
}

}  // namespace pollux
