#include "core/goodput.h"

#include <bit>
#include <cstdint>

#include "core/efficiency.h"
#include "optim/golden_section.h"

namespace pollux {
namespace {

// FNV-style accumulate-and-mix; order-dependent so permuted parameter values
// produce different fingerprints.
uint64_t MixIn(uint64_t state, uint64_t word) {
  state ^= word + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
  state *= 0x100000001b3ULL;
  return state;
}

uint64_t MixIn(uint64_t state, double value) {
  return MixIn(state, std::bit_cast<uint64_t>(value));
}

}  // namespace

double GoodputModel::ThroughputAt(const Placement& placement, double batch_size) const {
  return ModelThroughput(params_, placement, batch_size);
}

double GoodputModel::EfficiencyAt(double batch_size) const {
  return StatisticalEfficiency(phi_, static_cast<double>(base_batch_size_), batch_size);
}

double GoodputModel::GoodputAt(const Placement& placement, double batch_size) const {
  return ThroughputAt(placement, batch_size) * EfficiencyAt(batch_size);
}

GoodputModel::BatchChoice GoodputModel::OptimizeBatchSize(const Placement& placement,
                                                          const BatchLimits& limits) const {
  BatchChoice choice;
  if (placement.num_gpus <= 0) {
    return choice;
  }
  const long lo = limits.min_batch;
  const long hi = limits.MaxFeasible(placement.num_gpus);
  const auto result = GoldenSectionMaximizeInt(
      [&](long m) { return GoodputAt(placement, static_cast<double>(m)); }, lo, hi);
  choice.batch_size = result.best_x;
  choice.goodput = result.value;
  choice.throughput = ThroughputAt(placement, static_cast<double>(choice.batch_size));
  choice.efficiency = EfficiencyAt(static_cast<double>(choice.batch_size));
  return choice;
}

double Speedup(const GoodputModel& model, const Placement& placement, const BatchLimits& limits) {
  if (placement.num_gpus <= 0) {
    return 0.0;
  }
  const auto numerator = model.OptimizeBatchSize(placement, limits);
  const auto denominator = model.OptimizeBatchSize(Placement{1, 1}, limits);
  if (denominator.goodput <= 0.0) {
    // Degenerate model (e.g. no single-GPU data yet): treat any allocation as
    // merely neutral so the scheduler can still run the job and collect the
    // observations needed to fix the model.
    return 1.0;
  }
  return numerator.goodput / denominator.goodput;
}

uint64_t ModelFingerprint(const GoodputModel& model, const BatchLimits& limits) {
  const ThroughputParams& p = model.params();
  uint64_t fp = 0xcbf29ce484222325ULL;  // FNV offset basis.
  fp = MixIn(fp, p.alpha_grad);
  fp = MixIn(fp, p.beta_grad);
  fp = MixIn(fp, p.alpha_sync_local);
  fp = MixIn(fp, p.beta_sync_local);
  fp = MixIn(fp, p.alpha_sync_node);
  fp = MixIn(fp, p.beta_sync_node);
  fp = MixIn(fp, p.gamma);
  fp = MixIn(fp, model.phi());
  fp = MixIn(fp, static_cast<uint64_t>(model.base_batch_size()));
  fp = MixIn(fp, static_cast<uint64_t>(limits.min_batch));
  fp = MixIn(fp, static_cast<uint64_t>(limits.max_batch_total));
  fp = MixIn(fp, static_cast<uint64_t>(limits.max_batch_per_gpu));
  // 0 is reserved for "no model" keys (table-lookup entries).
  return fp != 0 ? fp : 1;
}

uint64_t ModelFingerprint(const GoodputModel& model, const BatchLimits& limits,
                          double rack_link_factor) {
  uint64_t fp = ModelFingerprint(model, limits);
  fp = MixIn(fp, rack_link_factor);
  return fp != 0 ? fp : 1;
}

}  // namespace pollux
