// Cached SPEEDUP_j lookups for the genetic algorithm.
//
// SPEEDUP_j(A_j) (Eqn. 15) depends on the placement vector A_j only through
// (K, N), and the throughput model (Eqn. 10) only distinguishes N == 1 from
// N >= 2. PolluxSched therefore precomputes, once per scheduling round per
// job, the batch-size-optimized goodput over a geometric grid of GPU counts
// in both co-located and cross-node regimes (speedup is smooth in K, so
// off-grid counts are linearly interpolated). Genetic-algorithm fitness
// evaluation then reduces to table lookups, which is what makes 100
// generations x 100 matrices per round tractable.

#ifndef POLLUX_CORE_SPEEDUP_TABLE_H_
#define POLLUX_CORE_SPEEDUP_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/eval_cache.h"
#include "core/goodput.h"
#include "core/rack_model.h"
#include "core/types.h"

namespace pollux {

class SpeedupTable {
 public:
  SpeedupTable() = default;

  // Precomputes speedups for K in [1, max_gpus]. The denominator is the
  // optimal single-GPU goodput (so At(1, 1) == 1).
  SpeedupTable(const GoodputModel& model, const BatchLimits& limits, int max_gpus)
      : SpeedupTable(model, limits, max_gpus, nullptr, 0, 0) {}

  // As above, but each grid point's OptimizeBatchSize result is memoized in
  // `cache` (when non-null) under (job_id, ModelFingerprint(model, limits),
  // K, regime, progress_bucket). Rebuilding a table for an unchanged model —
  // every autoscaler utility probe after the first, and scheduling rounds
  // where the agent's fit did not move — then skips the golden-section
  // searches entirely. Cached values are the exact doubles the uncached
  // constructor computes, so the resulting table is bit-identical.
  SpeedupTable(const GoodputModel& model, const BatchLimits& limits, int max_gpus,
               EvalCache* cache, uint64_t job_id, uint16_t progress_bucket);

  // Topology-aware variant: when rack_link_factor > 1 a third, cross-rack
  // regime is precomputed from the same model with alpha/beta_sync_node
  // scaled by the factor (Sec. 3.2's rack-locality extension of Eqn. 10).
  // Its cache entries use EvalCache::Key::nodes == 3 and the topology-
  // extended ModelFingerprint; node-regime entries are bit-identical to the
  // flat constructor's.
  SpeedupTable(const GoodputModel& model, const BatchLimits& limits, int max_gpus,
               EvalCache* cache, uint64_t job_id, uint16_t progress_bucket,
               double rack_link_factor);

  // SPEEDUP at K GPUs spread over N nodes; K beyond max_gpus clamps, off-grid
  // K interpolates linearly. N only matters as {1, multi}.
  double At(int num_gpus, int num_nodes) const;

  // Regime-aware lookup: placements spanning >= 2 racks use the cross-rack
  // table when it exists (falling back to the node regime otherwise).
  double At(const RackPlacement& placement) const;

  // The batch size chosen by the numerator's inner maximization at the
  // nearest grid point; used to configure the job once an allocation lands.
  long BatchSizeAt(int num_gpus, int num_nodes) const;
  long BatchSizeAt(const RackPlacement& placement) const;

  bool has_rack_regime() const { return !multi_rack_.empty(); }

  int max_gpus() const { return grid_.empty() ? 0 : grid_.back(); }
  bool empty() const { return grid_.empty(); }

 private:
  struct Entry {
    double speedup = 0.0;
    long batch_size = 0;
  };

  // Index of the grid segment containing k (grid_[i] <= k).
  size_t SegmentOf(int k) const;

  const std::vector<Entry>& TableFor(int num_nodes, int num_racks) const {
    if (num_racks >= 2 && !multi_rack_.empty()) {
      return multi_rack_;
    }
    return num_nodes <= 1 ? single_node_ : multi_node_;
  }

  double AtIn(const std::vector<Entry>& table, int num_gpus) const;
  long BatchSizeIn(const std::vector<Entry>& table, int num_gpus) const;

  std::vector<int> grid_;
  std::vector<Entry> single_node_;
  std::vector<Entry> multi_node_;
  std::vector<Entry> multi_rack_;  // Empty outside topology mode.
};

}  // namespace pollux

#endif  // POLLUX_CORE_SPEEDUP_TABLE_H_
