#include "core/throughput_model.h"

#include <cmath>

namespace pollux {

double GradTime(const ThroughputParams& params, const Placement& placement, double batch_size) {
  if (placement.num_gpus <= 0) {
    return 0.0;
  }
  return params.alpha_grad + params.beta_grad * batch_size / placement.num_gpus;
}

double SyncTime(const ThroughputParams& params, const Placement& placement) {
  const int k = placement.num_gpus;
  if (k <= 1) {
    return 0.0;
  }
  if (placement.num_nodes <= 1) {
    return params.alpha_sync_local + params.beta_sync_local * (k - 2);
  }
  return params.alpha_sync_node + params.beta_sync_node * (k - 2);
}

double IterTime(const ThroughputParams& params, const Placement& placement, double batch_size) {
  const double grad = GradTime(params, placement, batch_size);
  const double sync = SyncTime(params, placement);
  if (sync <= 0.0) {
    return grad;
  }
  if (grad <= 0.0) {
    return sync;
  }
  const double gamma = params.gamma < 1.0 ? 1.0 : params.gamma;
  // Compute (grad^g + sync^g)^(1/g) in a numerically safe way by factoring out
  // the larger term: hi * (1 + (lo/hi)^g)^(1/g).
  const double hi = grad > sync ? grad : sync;
  const double lo = grad > sync ? sync : grad;
  const double ratio = lo / hi;
  return hi * std::pow(1.0 + std::pow(ratio, gamma), 1.0 / gamma);
}

double ModelThroughput(const ThroughputParams& params, const Placement& placement,
                       double batch_size) {
  if (placement.num_gpus <= 0 || batch_size <= 0.0) {
    return 0.0;
  }
  const double titer = IterTime(params, placement, batch_size);
  if (titer <= 0.0) {
    return 0.0;
  }
  return batch_size / titer;
}

}  // namespace pollux
