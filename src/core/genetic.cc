#include "core/genetic.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pollux {
namespace {

struct GaMetrics {
  obs::Counter* rounds;
  obs::Counter* generations;
  obs::Counter* fitness_evals;
  obs::Gauge* best_fitness;
  obs::Histogram* gen_best_fitness;

  static const GaMetrics& Get() {
    static const GaMetrics metrics;
    return metrics;
  }

 private:
  GaMetrics() {
    auto& registry = obs::MetricsRegistry::Global();
    rounds = registry.GetCounter("ga.rounds");
    generations = registry.GetCounter("ga.generations");
    fitness_evals = registry.GetCounter("ga.fitness_evals");
    best_fitness = registry.GetGauge("ga.best_fitness");
    gen_best_fitness = registry.GetHistogram("ga.gen_best_fitness");
  }
};

// Decrements one positive cell of the given row, chosen uniformly at random
// among positive cells (weighted sampling over a single scan, no allocation).
// Returns false if the row is all zeros.
bool DecrementRandomPositiveInRow(AllocationMatrix& matrix, size_t job, Rng& rng) {
  int positives = 0;
  size_t chosen = 0;
  for (size_t n = 0; n < matrix.num_nodes(); ++n) {
    if (matrix.at(job, n) > 0) {
      ++positives;
      if (rng.UniformInt(1, positives) == 1) {
        chosen = n;
      }
    }
  }
  if (positives == 0) {
    return false;
  }
  --matrix.at(job, chosen);
  return true;
}

// Same, over a column.
bool DecrementRandomPositiveInColumn(AllocationMatrix& matrix, size_t node, Rng& rng) {
  int positives = 0;
  size_t chosen = 0;
  for (size_t j = 0; j < matrix.num_jobs(); ++j) {
    if (matrix.at(j, node) > 0) {
      ++positives;
      if (rng.UniformInt(1, positives) == 1) {
        chosen = j;
      }
    }
  }
  if (positives == 0) {
    return false;
  }
  --matrix.at(chosen, node);
  return true;
}

// Rack with the most GPUs in the given row (ties to the lowest rack id), or
// -1 for unallocated rows. `rack_gpus` is scratch sized to the rack count.
int PrimaryRackOf(const AllocationMatrix& matrix, size_t job, const ClusterSpec& cluster,
                  std::vector<int>& rack_gpus) {
  std::fill(rack_gpus.begin(), rack_gpus.end(), 0);
  for (size_t n = 0; n < matrix.num_nodes(); ++n) {
    const int gpus = matrix.at(job, n);
    if (gpus > 0) {
      rack_gpus[cluster.RackOf(static_cast<int>(n))] += gpus;
    }
  }
  int primary = -1;
  for (size_t r = 0; r < rack_gpus.size(); ++r) {
    if (rack_gpus[r] > 0 && (primary < 0 || rack_gpus[r] > rack_gpus[primary])) {
      primary = static_cast<int>(r);
    }
  }
  return primary;
}

}  // namespace

GeneticOptimizer::GeneticOptimizer(ClusterSpec cluster, GaOptions options)
    : cluster_(std::move(cluster)), options_(options), rng_(options.seed) {
  BuildRackIndex();
}

void GeneticOptimizer::SetCluster(ClusterSpec cluster) {
  cluster_ = std::move(cluster);
  population_.clear();
  last_job_ids_.clear();
  BuildRackIndex();
}

void GeneticOptimizer::BuildRackIndex() {
  rack_nodes_.clear();
  if (!cluster_.HasTopology()) {
    return;
  }
  rack_nodes_.resize(static_cast<size_t>(cluster_.NumRacks()));
  for (int n = 0; n < cluster_.NumNodes(); ++n) {
    rack_nodes_[cluster_.RackOf(n)].push_back(n);
  }
}

void GeneticOptimizer::EnsurePool() {
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(options_.threads <= 0 ? -1 : options_.threads);
  }
}

void GeneticOptimizer::Mutate(AllocationMatrix& matrix) { MutateWith(matrix, rng_); }

void GeneticOptimizer::MutateWith(AllocationMatrix& matrix, Rng& rng) const {
  const size_t nodes = matrix.num_nodes();
  if (nodes == 0) {
    return;
  }
  if (cluster_.HasTopology()) {
    MutateRackAffineWith(matrix, rng);
    return;
  }
  // Each cell mutates with probability 1/N, i.e. each job suffers one
  // mutation on average. Sampled as a per-row Binomial(N, 1/N) draw (cheaper
  // than N Bernoulli draws per job; Poisson(1) approximation for large N).
  for (size_t j = 0; j < matrix.num_jobs(); ++j) {
    int64_t mutations =
        nodes <= 8 ? 0 : std::min<int64_t>(rng.Poisson(1.0), static_cast<int64_t>(nodes));
    if (nodes <= 8) {
      for (size_t n = 0; n < nodes; ++n) {
        if (rng.Bernoulli(1.0 / static_cast<double>(nodes))) {
          matrix.at(j, n) = static_cast<int>(rng.UniformInt(0, cluster_.gpus_per_node[n]));
        }
      }
      continue;
    }
    for (int64_t k = 0; k < mutations; ++k) {
      const size_t n = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(nodes) - 1));
      matrix.at(j, n) = static_cast<int>(rng.UniformInt(0, cluster_.gpus_per_node[n]));
    }
  }
}

void GeneticOptimizer::MutateRackAffineWith(AllocationMatrix& matrix, Rng& rng) const {
  const size_t nodes = matrix.num_nodes();
  // Same mutation-count law as the flat operator (one expected mutation per
  // row), but half of an allocated job's mutations are redirected to a
  // uniform node inside its primary rack: the search explores "fill my rack"
  // moves as often as global ones, which is what replaces the flat model's
  // scalar node-count penalty.
  std::vector<int> rack_gpus(rack_nodes_.size(), 0);
  const auto mutate_cell = [&](size_t j, size_t n, int primary) {
    if (primary >= 0 && rng.Bernoulli(0.5)) {
      const std::vector<int>& members = rack_nodes_[static_cast<size_t>(primary)];
      n = static_cast<size_t>(
          members[rng.UniformInt(0, static_cast<int64_t>(members.size()) - 1)]);
    }
    matrix.at(j, n) = static_cast<int>(rng.UniformInt(0, cluster_.gpus_per_node[n]));
  };
  for (size_t j = 0; j < matrix.num_jobs(); ++j) {
    const int primary = PrimaryRackOf(matrix, j, cluster_, rack_gpus);
    if (nodes <= 8) {
      for (size_t n = 0; n < nodes; ++n) {
        if (rng.Bernoulli(1.0 / static_cast<double>(nodes))) {
          mutate_cell(j, n, primary);
        }
      }
      continue;
    }
    const int64_t mutations = std::min<int64_t>(rng.Poisson(1.0), static_cast<int64_t>(nodes));
    for (int64_t k = 0; k < mutations; ++k) {
      const size_t n = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(nodes) - 1));
      mutate_cell(j, n, primary);
    }
  }
}

AllocationMatrix GeneticOptimizer::Crossover(const AllocationMatrix& a, const AllocationMatrix& b) {
  return CrossoverWith(a, b, rng_);
}

AllocationMatrix GeneticOptimizer::CrossoverWith(const AllocationMatrix& a,
                                                 const AllocationMatrix& b, Rng& rng) const {
  // Row-atomic: each job's full placement comes from one parent, so a
  // rack-compact row survives crossover intact (crossover never needs its own
  // rack-affinity handling).
  AllocationMatrix child(a.num_jobs(), a.num_nodes());
  for (size_t j = 0; j < a.num_jobs(); ++j) {
    const AllocationMatrix& parent = rng.Bernoulli(0.5) ? a : b;
    for (size_t n = 0; n < a.num_nodes(); ++n) {
      child.at(j, n) = parent.at(j, n);
    }
  }
  return child;
}

void GeneticOptimizer::Repair(AllocationMatrix& matrix, const std::vector<SchedJobInfo>& jobs) {
  RepairWith(matrix, jobs, rng_);
}

void GeneticOptimizer::RepairWith(AllocationMatrix& matrix, const std::vector<SchedJobInfo>& jobs,
                                  Rng& rng) const {
  const size_t num_jobs = matrix.num_jobs();
  const size_t num_nodes = matrix.num_nodes();

  // 1. Per-job exploration cap (at most 2x the most GPUs ever held).
  for (size_t j = 0; j < num_jobs; ++j) {
    const int cap = std::max(1, jobs[j].max_gpus_cap);
    int total = matrix.JobPlacement(j).num_gpus;
    while (total > cap && DecrementRandomPositiveInRow(matrix, j, rng)) {
      --total;
    }
  }

  // 2. Node capacity: randomly decrement cells within over-capacity columns.
  for (size_t n = 0; n < num_nodes; ++n) {
    int usage = 0;
    for (size_t j = 0; j < num_jobs; ++j) {
      usage += matrix.at(j, n);
    }
    while (usage > cluster_.gpus_per_node[n] &&
           DecrementRandomPositiveInColumn(matrix, n, rng)) {
      --usage;
    }
  }

  // 2b. Rack-affine compaction (topology mode only): gather a rack-spanning
  // job's spilled GPUs back into its primary rack where capacity allows —
  // prefer filling a node, then the rack, before leaving any spill. Runs
  // before interference avoidance so compacted rows are what the fixed point
  // sees. Deterministic (no RNG draws), so the flat-mode stream is untouched.
  if (!rack_nodes_.empty()) {
    CompactRacks(matrix);
  }

  // 3. Interference avoidance: at most one distributed (multi-node) job per
  // node. Evicting a job's share on one node can change which jobs are
  // distributed, so iterate to a fixed point. Node counts per job are
  // maintained incrementally to keep the scan linear.
  if (!options_.interference_avoidance) {
    return;
  }
  std::vector<int> nodes_of_job(num_jobs, 0);
  for (size_t j = 0; j < num_jobs; ++j) {
    for (size_t n = 0; n < num_nodes; ++n) {
      if (matrix.at(j, n) > 0) {
        ++nodes_of_job[j];
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t n = 0; n < num_nodes; ++n) {
      // Reservoir-pick the distributed job to keep on this node.
      int distributed = 0;
      size_t keep = 0;
      for (size_t j = 0; j < num_jobs; ++j) {
        if (matrix.at(j, n) > 0 && nodes_of_job[j] >= 2) {
          ++distributed;
          if (rng.UniformInt(1, distributed) == 1) {
            keep = j;
          }
        }
      }
      if (distributed < 2) {
        continue;
      }
      for (size_t j = 0; j < num_jobs; ++j) {
        if (j != keep && matrix.at(j, n) > 0 && nodes_of_job[j] >= 2) {
          matrix.at(j, n) = 0;
          --nodes_of_job[j];
          changed = true;
        }
      }
    }
  }
}

void GeneticOptimizer::CompactRacks(AllocationMatrix& matrix) const {
  const size_t num_jobs = matrix.num_jobs();
  const size_t num_nodes = matrix.num_nodes();
  std::vector<int> usage = matrix.NodeUsage();
  std::vector<int> rack_gpus(rack_nodes_.size(), 0);
  for (size_t j = 0; j < num_jobs; ++j) {
    const int primary = PrimaryRackOf(matrix, j, cluster_, rack_gpus);
    if (primary < 0) {
      continue;
    }
    int racks_occupied = 0;
    for (int g : rack_gpus) {
      racks_occupied += g > 0 ? 1 : 0;
    }
    if (racks_occupied < 2) {
      continue;
    }
    const std::vector<int>& home = rack_nodes_[static_cast<size_t>(primary)];
    // Two destination passes: nodes the job already occupies (fill a node),
    // then the rest of the rack (fill the rack); node index order within each.
    for (size_t n = 0; n < num_nodes; ++n) {
      if (cluster_.RackOf(static_cast<int>(n)) == primary || matrix.at(j, n) <= 0) {
        continue;
      }
      for (int pass = 0; pass < 2 && matrix.at(j, n) > 0; ++pass) {
        for (int dst : home) {
          const bool occupied = matrix.at(j, static_cast<size_t>(dst)) > 0;
          if ((pass == 0) != occupied) {
            continue;
          }
          const int free = cluster_.gpus_per_node[dst] - usage[dst];
          const int take = std::min(free, matrix.at(j, n));
          if (take <= 0) {
            continue;
          }
          matrix.at(j, static_cast<size_t>(dst)) += take;
          matrix.at(j, n) -= take;
          usage[dst] += take;
          usage[n] -= take;
          if (matrix.at(j, n) <= 0) {
            break;
          }
        }
      }
    }
  }
}

void GeneticOptimizer::SeedPopulation(const std::vector<SchedJobInfo>& jobs) {
  const size_t num_jobs = jobs.size();
  const size_t num_nodes = static_cast<size_t>(cluster_.NumNodes());

  // Remap the persisted population onto the current job set by job id.
  std::vector<AllocationMatrix> remapped;
  if (!population_.empty() && population_.front().num_nodes() == num_nodes) {
    for (const auto& old : population_) {
      AllocationMatrix matrix(num_jobs, num_nodes);
      for (size_t j = 0; j < num_jobs; ++j) {
        for (size_t old_row = 0; old_row < last_job_ids_.size(); ++old_row) {
          if (last_job_ids_[old_row] == jobs[j].job_id) {
            for (size_t n = 0; n < num_nodes; ++n) {
              matrix.at(j, n) = old.at(old_row, n);
            }
            break;
          }
        }
      }
      remapped.push_back(std::move(matrix));
    }
  }
  population_ = std::move(remapped);

  // The incumbent allocation is always a member, so the GA can only improve
  // on keeping everything in place.
  AllocationMatrix incumbent(num_jobs, num_nodes);
  for (size_t j = 0; j < num_jobs; ++j) {
    incumbent.SetRow(j, jobs[j].current_allocation);
  }
  population_.push_back(incumbent);

  while (population_.size() < static_cast<size_t>(options_.population_size)) {
    AllocationMatrix matrix = incumbent;
    MutateWith(matrix, rng_);
    population_.push_back(std::move(matrix));
  }
  if (population_.size() > static_cast<size_t>(options_.population_size)) {
    population_.resize(static_cast<size_t>(options_.population_size));
  }
  for (auto& matrix : population_) {
    RepairWith(matrix, jobs, rng_);
  }
  last_job_ids_.clear();
  for (const auto& job : jobs) {
    last_job_ids_.push_back(job.job_id);
  }
}

size_t GeneticOptimizer::TournamentPickWith(const std::vector<double>& fitnesses,
                                            Rng& rng) const {
  size_t best = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(fitnesses.size()) - 1));
  for (int i = 1; i < options_.tournament_size; ++i) {
    const size_t candidate =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(fitnesses.size()) - 1));
    if (fitnesses[candidate] > fitnesses[best]) {
      best = candidate;
    }
  }
  return best;
}

GeneticOptimizer::Result GeneticOptimizer::Optimize(const std::vector<SchedJobInfo>& jobs) {
  TRACE_SCOPE("ga_round");
  Result result;
  const size_t num_nodes = static_cast<size_t>(cluster_.NumNodes());
  if (jobs.empty() || num_nodes == 0) {
    result.best = AllocationMatrix(jobs.size(), num_nodes);
    return result;
  }
  const bool observed = obs::MetricsRegistry::Global().enabled();
  if (observed) {
    GaMetrics::Get().rounds->Add();
  }

  EnsurePool();
  // Speedup tables are rebuilt from re-fitted models every round, so entries
  // must not survive into this one.
  cache_.Clear();
  EvalCache* cache = options_.memoize ? &cache_ : nullptr;

  SeedPopulation(jobs);
  std::vector<double> fitnesses(population_.size());
  pool_->ParallelFor(0, population_.size(), [&](size_t i) {
    fitnesses[i] = Fitness(jobs, population_[i], options_.restart_penalty, cache, &cluster_);
  });
  if (observed) {
    GaMetrics::Get().fitness_evals->Add(population_.size());
  }

  const size_t brood = static_cast<size_t>(options_.population_size);
  std::vector<Rng> streams;
  streams.reserve(brood);
  std::vector<AllocationMatrix> children(brood);
  std::vector<double> child_fitnesses(brood);
  for (int gen = 0; gen < options_.generations; ++gen) {
    const size_t parents = population_.size();
    // Fork one stream per offspring from the master generator, in index
    // order, before any parallelism: offspring i's randomness then depends
    // only on (seed, generation, i), never on which worker runs it.
    streams.clear();
    for (size_t i = 0; i < brood; ++i) {
      streams.push_back(rng_.Fork());
    }
    pool_->ParallelFor(0, brood, [&](size_t i) {
      Rng& rng = streams[i];
      const size_t pa = TournamentPickWith(fitnesses, rng);
      const size_t pb = TournamentPickWith(fitnesses, rng);
      AllocationMatrix child = CrossoverWith(population_[pa], population_[pb], rng);
      MutateWith(child, rng);
      RepairWith(child, jobs, rng);
      child_fitnesses[i] = Fitness(jobs, child, options_.restart_penalty, cache, &cluster_);
      children[i] = std::move(child);
    });
    for (size_t i = 0; i < brood; ++i) {
      population_.push_back(std::move(children[i]));
      fitnesses.push_back(child_fitnesses[i]);
    }
    // Elitist survival: keep the best population_size individuals.
    std::vector<size_t> order(population_.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return fitnesses[a] > fitnesses[b]; });
    std::vector<AllocationMatrix> survivors;
    std::vector<double> survivor_fitnesses;
    survivors.reserve(parents);
    for (size_t i = 0; i < std::min(parents, order.size()); ++i) {
      survivors.push_back(std::move(population_[order[i]]));
      survivor_fitnesses.push_back(fitnesses[order[i]]);
    }
    population_ = std::move(survivors);
    fitnesses = std::move(survivor_fitnesses);
    if (observed) {
      const GaMetrics& metrics = GaMetrics::Get();
      metrics.generations->Add();
      metrics.fitness_evals->Add(brood);
      metrics.gen_best_fitness->Record(fitnesses.front());
    }
  }

  result.best = population_.front();
  result.fitness = fitnesses.front();
  result.utility = Utility(jobs, result.best, cluster_.TotalGpus(), &cluster_);
  if (observed) {
    GaMetrics::Get().best_fitness->Set(result.fitness);
  }
  return result;
}

}  // namespace pollux
