// Goodput-driven cloud auto-scaling (Sec. 4.2.2).
//
// UTILITY(A) = sum_j SPEEDUP_j(A_j) / TOTAL_GPUS is in [0, 1]. When the
// applied allocation's utility leaves the operator-configured band, Pollux
// binary-searches the number of nodes (assuming utility decreases with
// cluster size), evaluating each candidate size by running the genetic
// algorithm, and picks the size whose utility is closest to the band's
// midpoint.

#ifndef POLLUX_CORE_AUTOSCALER_H_
#define POLLUX_CORE_AUTOSCALER_H_

#include <functional>

namespace pollux {

struct AutoscaleConfig {
  double low_util_threshold = 0.45;
  double high_util_threshold = 0.85;
  int min_nodes = 1;
  int max_nodes = 16;
};

struct AutoscaleDecision {
  int target_nodes = 0;
  // Number of what-if GA evaluations performed.
  int probes = 0;
  bool changed = false;
};

// Decides the next cluster size. `current_utility` is UTILITY of the applied
// allocation at `current_nodes`; `utility_at(n)` must evaluate the utility
// the scheduler would achieve with n nodes (typically
// PolluxSched::EvaluateUtilityAt). Returns current_nodes unchanged while the
// utility stays within the configured band.
AutoscaleDecision DecideNodeCount(const AutoscaleConfig& config, int current_nodes,
                                  double current_utility,
                                  const std::function<double(int)>& utility_at);

}  // namespace pollux

#endif  // POLLUX_CORE_AUTOSCALER_H_
