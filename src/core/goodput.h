// The goodput of DL training (Definition 3.1):
//
//   GOODPUT_t(a, m) = THROUGHPUT(a, m) * EFFICIENCY_t(m)                (6)
//
// A GoodputModel is fully specified by (theta_sys, phi_t, m0) — exactly the
// triple PolluxAgent reports to PolluxSched. Goodput is unimodal in m, so the
// optimal batch size (Eqn. 13) is found with golden-section search.

#ifndef POLLUX_CORE_GOODPUT_H_
#define POLLUX_CORE_GOODPUT_H_

#include "core/throughput_model.h"
#include "core/types.h"

namespace pollux {

class GoodputModel {
 public:
  GoodputModel() = default;
  GoodputModel(ThroughputParams params, double phi, long base_batch_size)
      : params_(params), phi_(phi), base_batch_size_(base_batch_size) {}

  double ThroughputAt(const Placement& placement, double batch_size) const;
  double EfficiencyAt(double batch_size) const;
  double GoodputAt(const Placement& placement, double batch_size) const;

  struct BatchChoice {
    long batch_size = 0;
    double goodput = 0.0;
    double throughput = 0.0;
    double efficiency = 0.0;
  };

  // Eqn. 13: the most efficient batch size for the given placement within the
  // feasibility box (golden-section over integers). Returns a zero-goodput
  // choice for empty placements.
  BatchChoice OptimizeBatchSize(const Placement& placement, const BatchLimits& limits) const;

  const ThroughputParams& params() const { return params_; }
  double phi() const { return phi_; }
  long base_batch_size() const { return base_batch_size_; }
  void set_phi(double phi) { phi_ = phi; }
  void set_params(const ThroughputParams& params) { params_ = params; }

 private:
  ThroughputParams params_;
  double phi_ = 0.0;
  long base_batch_size_ = 1;
};

// Eqn. 15: goodput improvement of the given placement over a single GPU, both
// sides maximized over the batch size. SPEEDUP({1,1}) == 1 by construction,
// and SPEEDUP of an empty placement is 0.
double Speedup(const GoodputModel& model, const Placement& placement, const BatchLimits& limits);

// Order-dependent 64-bit hash over the exact bit patterns of
// (theta_sys, phi_t, m0, limits). Two equal fingerprints identify (up to hash
// collision, ~2^-64 per pair) the same goodput function, so memoized
// OptimizeBatchSize results keyed by the fingerprint survive across
// scheduling rounds and autoscaler probes without ever serving values from a
// stale model revision (EvalCache::Key::model_fp).
uint64_t ModelFingerprint(const GoodputModel& model, const BatchLimits& limits);

// Topology-extended fingerprint: additionally mixes in the cross-rack link
// factor, so rack-regime table entries (EvalCache::Key::nodes == 3) never
// alias node-regime entries of the same model under a different topology.
// Flat-mode callers use the two-argument overload, whose hashes are unchanged.
uint64_t ModelFingerprint(const GoodputModel& model, const BatchLimits& limits,
                          double rack_link_factor);

}  // namespace pollux

#endif  // POLLUX_CORE_GOODPUT_H_
