// AdaScale SGD support (Sec. 2.2, Eqn. 5).
//
// AdaScale runs large-batch SGD at batch size m while behaving like r_t
// iterations of small-batch SGD at the user's original batch size m0:
//   * the learning rate is scaled by r_t = (phi_t/m0 + 1)/(phi_t/m + 1),
//   * training progress is accounted in "scale-invariant iterations", i.e.
//     the running sum of r_t.
//
// AdaScaleState is the bookkeeping object a training loop (or PolluxAgent)
// drives: feed it gradient-moment samples, ask it for the learning rate at
// the current batch size, and read back statistical progress.

#ifndef POLLUX_CORE_ADASCALE_H_
#define POLLUX_CORE_ADASCALE_H_

#include "core/gns.h"

namespace pollux {

class AdaScaleState {
 public:
  // `base_batch_size` is m0 and `base_lr` is eta_0, both chosen by the user at
  // submission time. `smoothing` controls GNS smoothing.
  AdaScaleState(long base_batch_size, double base_lr, double smoothing = 0.95);

  // Records gradient statistics for the step that just ran, then accounts one
  // step of progress at the given batch size. Returns the gain r_t that was
  // credited.
  double Update(const GnsSample& sample, long batch_size);

  // Gain r_t (Eqn. 5) at the given batch size under the current smoothed phi.
  double GainAt(long batch_size) const;

  // Learning rate AdaScale prescribes at the given batch size:
  // eta = r_t * eta_0.
  double LearningRateAt(long batch_size) const;

  // Statistical efficiency (Eqn. 7) at the given batch size.
  double EfficiencyAt(long batch_size) const;

  // Accumulated scale-invariant iterations (equivalent m0-batch steps).
  double scale_invariant_iterations() const { return scale_invariant_iterations_; }

  // Accumulated real steps taken.
  long steps() const { return steps_; }

  double phi() const { return tracker_.Phi(); }
  long base_batch_size() const { return base_batch_size_; }
  double base_lr() const { return base_lr_; }
  const GnsTracker& tracker() const { return tracker_; }

 private:
  long base_batch_size_;
  double base_lr_;
  GnsTracker tracker_;
  double scale_invariant_iterations_ = 0.0;
  long steps_ = 0;
};

}  // namespace pollux

#endif  // POLLUX_CORE_ADASCALE_H_
