// Online fitting of the system throughput parameters theta_sys (Sec. 4.1).
//
// PolluxAgent records (placement, batch size, T_iter) triples during training
// and periodically minimizes the root mean squared logarithmic error between
// Eqn. 11 and the recorded data using bound-constrained L-BFGS, with alpha
// and beta parameters constrained non-negative and gamma in [1, 10].
//
// Prior-driven exploration: parameters describing configurations the job has
// never run in are pinned to 0 ("assume perfect scaling until explored"):
//   * never used >1 GPU      -> all sync parameters pinned to 0,
//   * never used >1 node     -> cross-node sync parameters pinned to 0,
//   * never used >2 GPUs     -> both retrogression slopes pinned to 0.

#ifndef POLLUX_CORE_MODEL_FITTER_H_
#define POLLUX_CORE_MODEL_FITTER_H_

#include <cstdint>
#include <vector>

#include "core/throughput_model.h"
#include "core/types.h"

namespace pollux {

struct ThroughputObservation {
  Placement placement;
  long batch_size = 0;
  double iter_time = 0.0;  // Seconds.
};

struct FitOptions {
  // Largest configuration the job has experienced, driving the priors above.
  int max_gpus_seen = 1;
  int max_nodes_seen = 1;
  // Random restarts for the non-convex RMSLE landscape.
  int multi_starts = 3;
  uint64_t seed = 1;
  // Upper bounds for the alpha/beta parameters (seconds / seconds-per-example).
  double max_alpha = 100.0;
  double max_beta = 10.0;
  // Robust fitting: after an initial fit, observations whose log-residual
  // deviates from the residual median by more than this many MAD-sigmas
  // (1.4826 * MAD) are discarded and the fit is re-run on the survivors —
  // the defense against straggler-inflated T_iter samples. 0 disables.
  double outlier_mad_threshold = 0.0;
};

struct FitResult {
  ThroughputParams params;
  double rmsle = 0.0;
  int evaluations = 0;
  // Observations discarded by the MAD outlier pass (0 when disabled).
  int outliers_rejected = 0;
};

// Root mean squared logarithmic error of `params` against the observations.
double ThroughputRmsle(const ThroughputParams& params,
                       const std::vector<ThroughputObservation>& observations);

// Fits theta_sys to the observations. Requires at least one observation;
// with very few observations the priors dominate, exactly as intended.
FitResult FitThroughputParams(const std::vector<ThroughputObservation>& observations,
                              const FitOptions& options = {});

}  // namespace pollux

#endif  // POLLUX_CORE_MODEL_FITTER_H_
