// TopologySpec parsing and materialization (DESIGN.md sec. 14).

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/allocation.h"
#include "core/types.h"

namespace pollux {
namespace {

// Relative single-GPU throughput per generation, kT4 = 1.0 baseline. Ratios
// follow published ResNet-50 training throughput across the generations.
constexpr double kGpuScales[kNumGpuTypes] = {1.0, 1.3, 2.0, 3.2};
constexpr const char* kGpuNames[kNumGpuTypes] = {"t4", "p100", "v100", "a100"};

bool ParsePositiveInt(const std::string& text, int* out) {
  if (text.empty()) {
    return false;
  }
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  const long value = std::strtol(text.c_str(), nullptr, 10);
  if (value <= 0 || value > 1000000) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool MixError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

double GpuTypeScale(GpuType type) {
  const int index = static_cast<int>(type);
  return index >= 0 && index < kNumGpuTypes ? kGpuScales[index] : 1.0;
}

const char* GpuTypeName(GpuType type) {
  const int index = static_cast<int>(type);
  return index >= 0 && index < kNumGpuTypes ? kGpuNames[index] : "unknown";
}

bool GpuTypeFromName(const std::string& name, GpuType* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  for (int i = 0; i < kNumGpuTypes; ++i) {
    if (lower == kGpuNames[i]) {
      *out = static_cast<GpuType>(i);
      return true;
    }
  }
  return false;
}

bool TopologySpec::IsFlat() const {
  // A single rack of baseline GPUs is the legacy model regardless of the
  // link factor (the cross-rack tier is unreachable with one rack).
  if (num_racks > 1) {
    return false;
  }
  for (GpuType type : node_gpu_type) {
    if (type != GpuType::kT4) {
      return false;
    }
  }
  return true;
}

TopologySpec TopologySpec::FlatHomogeneous(int nodes, int gpus_per_node) {
  TopologySpec spec;
  spec.num_racks = 1;
  spec.nodes_per_rack = nodes;
  spec.gpus_per_node = gpus_per_node;
  spec.rack_link_factor = 1.0;
  return spec;
}

ClusterSpec TopologySpec::ToCluster() const {
  ClusterSpec cluster;
  const int nodes = NumNodes();
  cluster.gpus_per_node.assign(static_cast<size_t>(nodes), gpus_per_node);
  if (IsFlat()) {
    return cluster;  // No annotations: byte-identical legacy behaviour.
  }
  cluster.rack_of_node.resize(static_cast<size_t>(nodes));
  cluster.gpu_type_of_node.resize(static_cast<size_t>(nodes));
  cluster.node_gpu_scale.resize(static_cast<size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    cluster.rack_of_node[n] = nodes_per_rack > 0 ? n / nodes_per_rack : 0;
    const GpuType type =
        n < static_cast<int>(node_gpu_type.size()) ? node_gpu_type[n] : GpuType::kT4;
    cluster.gpu_type_of_node[n] = static_cast<int>(type);
    cluster.node_gpu_scale[n] = GpuTypeScale(type);
  }
  cluster.rack_link_factor = rack_link_factor >= 1.0 ? rack_link_factor : 1.0;
  return cluster;
}

bool ParseTopology(const std::string& text, int gpus_per_node, TopologySpec* spec,
                   std::string* error) {
  const size_t x = text.find('x');
  int racks = 0;
  int nodes_per_rack = 0;
  if (x == std::string::npos || !ParsePositiveInt(text.substr(0, x), &racks) ||
      !ParsePositiveInt(text.substr(x + 1), &nodes_per_rack)) {
    return MixError(error, "--topology must be RxN with positive integers (e.g. 4x8), got '" +
                               text + "'");
  }
  if (gpus_per_node <= 0) {
    return MixError(error, "--gpus_per_node must be positive with --topology");
  }
  spec->num_racks = racks;
  spec->nodes_per_rack = nodes_per_rack;
  spec->gpus_per_node = gpus_per_node;
  return true;
}

bool ParseGpuMix(const std::string& text, TopologySpec* spec, std::string* error) {
  const int nodes = spec->NumNodes();
  if (nodes <= 0) {
    return MixError(error, "--gpu-mix requires a topology with at least one node");
  }
  // Parse "type:frac,type:frac,..." preserving the listed order.
  std::vector<GpuType> types;
  std::vector<double> fractions;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string item = text.substr(start, end - start);
    const size_t colon = item.find(':');
    GpuType type = GpuType::kT4;
    char* frac_end = nullptr;
    const double fraction =
        colon == std::string::npos ? -1.0 : std::strtod(item.c_str() + colon + 1, &frac_end);
    if (colon == std::string::npos || !GpuTypeFromName(item.substr(0, colon), &type) ||
        frac_end == item.c_str() + colon + 1 || *frac_end != '\0' || fraction <= 0.0 ||
        fraction > 1.0) {
      return MixError(error, "--gpu-mix entries must be type:fraction (types: t4, p100, v100, "
                             "a100; fractions in (0, 1]), got '" +
                                 item + "'");
    }
    types.push_back(type);
    fractions.push_back(fraction);
    start = end + 1;
    if (end == text.size()) {
      break;
    }
  }
  double total = 0.0;
  for (double f : fractions) {
    total += f;
  }
  if (total < 0.999 || total > 1.001) {
    return MixError(error, "--gpu-mix fractions must sum to 1");
  }
  // Largest-remainder apportionment of node counts, then assignment in listed
  // order by node index: deterministic, and generations cluster into
  // contiguous node (hence rack) blocks.
  std::vector<int> counts(types.size(), 0);
  std::vector<std::pair<double, size_t>> remainders;
  int assigned = 0;
  for (size_t i = 0; i < types.size(); ++i) {
    const double exact = fractions[i] * nodes;
    counts[i] = static_cast<int>(exact);
    assigned += counts[i];
    remainders.emplace_back(exact - counts[i], i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = 0; assigned < nodes; ++i) {
    ++counts[remainders[i % remainders.size()].second];
    ++assigned;
  }
  spec->node_gpu_type.clear();
  spec->node_gpu_type.reserve(static_cast<size_t>(nodes));
  for (size_t i = 0; i < types.size(); ++i) {
    for (int c = 0; c < counts[i]; ++c) {
      spec->node_gpu_type.push_back(types[i]);
    }
  }
  return true;
}

}  // namespace pollux
