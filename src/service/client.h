// Client library for pollux_schedd (DESIGN.md §15).
//
// Strictly request-response over one Unix-domain connection. Every high-level
// operation runs under a per-request deadline and retries the retryable
// failure classes — NACK push-back (queue_full/draining) and a lost
// connection — with capped, jittered exponential backoff; kMsgError replies
// are client bugs or daemon refusals and fail immediately. Requests are safe
// to retry by construction: submits and reports are idempotent by content,
// and RunRound replays are answered from the daemon's cached-decision path.
//
// The jitter RNG is seeded per client, so a swarm of bench clients backs off
// deterministically (per seed) yet desynchronized (across seeds).

#ifndef POLLUX_SERVICE_CLIENT_H_
#define POLLUX_SERVICE_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "service/tenant.h"
#include "service/wire.h"
#include "util/rng.h"

namespace pollux {
namespace service {

struct ScheddClientOptions {
  std::string socket_path;
  // Per-request deadline, seconds: the retry loop (send + wait + backoff)
  // never exceeds it.
  double request_timeout = 30.0;
  // Exponential backoff bounds between retries, seconds. Each wait is
  // Uniform(0.5, 1.0) * min(backoff_max, backoff_initial * 2^attempt).
  double backoff_initial = 0.02;
  double backoff_max = 1.0;
  // Seed for the backoff jitter stream.
  uint64_t jitter_seed = 1;
};

// Cumulative client-side accounting (reported by bench_schedd).
struct ScheddClientStats {
  uint64_t requests = 0;    // high-level operations attempted
  uint64_t retries = 0;     // resends after NACK or reconnect
  uint64_t nacks = 0;       // NACK replies received
  uint64_t reconnects = 0;  // successful re-establishments after a drop
  uint64_t timeouts = 0;    // operations that exhausted their deadline
};

class ScheddClient {
 public:
  explicit ScheddClient(ScheddClientOptions options);
  ~ScheddClient();

  ScheddClient(const ScheddClient&) = delete;
  ScheddClient& operator=(const ScheddClient&) = delete;

  // Connects and completes the hello/version handshake.
  bool Connect(std::string* error);
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  // High-level operations. Each returns false with *error on a non-retryable
  // reply or an exhausted deadline.
  bool CreateTenant(const TenantSetup& setup, std::string* error);
  bool SubmitJob(uint64_t tenant_id, const AgentReport& agent, double gpu_time,
                 std::string* error);
  bool CancelJob(uint64_t tenant_id, uint64_t job_id, std::string* error);
  // Batched telemetry ingest; *accepted (optional) receives the daemon's
  // accepted count.
  bool Report(uint64_t tenant_id, const std::vector<SchedJobReport>& reports,
              uint64_t* accepted, std::string* error);
  bool RunRound(uint64_t tenant_id, uint64_t round, RoundDecisions* decisions,
                std::string* error);
  bool Stats(std::map<std::string, uint64_t>* stats, std::string* error);
  bool Ping(std::string* error);

  // One raw exchange with no retries and no handshake requirements; the
  // negative-path tests drive the daemon's error handling through this.
  struct RawReply {
    bool ok = false;  // a frame came back before the deadline
    uint32_t type = 0;
    std::string payload;
    std::string error;
  };
  RawReply Call(uint32_t type, const std::string& payload);

  const ScheddClientStats& stats() const { return stats_; }

 private:
  // Sends `payload` as `type` and waits for the response frame, retrying
  // retryable failures until the deadline. On success fills reply_type and
  // reply_payload and returns true.
  bool Request(uint32_t type, const std::string& payload, uint32_t* reply_type,
               std::string* reply_payload, std::string* error);
  bool SendAll(const std::string& bytes, std::string* error);
  bool ReadFrame(double deadline, Frame* frame, std::string* error);
  bool ExpectAck(uint32_t type, const std::string& payload, uint64_t* value,
                 std::string* error);
  void BackoffSleep(int attempt, double deadline);

  ScheddClientOptions options_;
  int fd_ = -1;
  std::string inbuf_;
  Rng jitter_;
  ScheddClientStats stats_;
};

}  // namespace service
}  // namespace pollux

#endif  // POLLUX_SERVICE_CLIENT_H_
