#include "service/daemon.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <utility>

#include "obs/metrics.h"

namespace pollux {
namespace service {
namespace {

// Cached instrument handles (obs/metrics.h pattern: resolve once, then every
// record is a relaxed atomic guarded by the registry's enabled flag).
struct ScheddObsMetrics {
  obs::Counter* frames;
  obs::Counter* bad_frames;
  obs::Counter* sheds;
  obs::Counter* nacks;
  obs::Counter* errors;
  obs::Counter* checkpoints;
  obs::Counter* slow_closed;
  obs::Gauge* queue_depth;
  obs::Histogram* round_seconds;
  obs::Histogram* ingest_seconds;
};

ScheddObsMetrics& ObsMetrics() {
  static ScheddObsMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    ScheddObsMetrics m;
    m.frames = registry.GetCounter("schedd.frames");
    m.bad_frames = registry.GetCounter("schedd.frames.bad");
    m.sheds = registry.GetCounter("schedd.shed");
    m.nacks = registry.GetCounter("schedd.nack");
    m.errors = registry.GetCounter("schedd.errors");
    m.checkpoints = registry.GetCounter("schedd.checkpoints");
    m.slow_closed = registry.GetCounter("schedd.conn.slow_closed");
    m.queue_depth = registry.GetGauge("schedd.queue.depth");
    m.round_seconds = registry.GetHistogram("schedd.round.seconds");
    m.ingest_seconds = registry.GetHistogram("schedd.ingest.seconds");
    return m;
  }();
  return metrics;
}

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Guard on decoded batch sizes; a frame already passed the payload cap, this
// only rejects nonsense counts that could not fit the payload anyway.
constexpr uint64_t kMaxBatch = uint64_t{1} << 20;

}  // namespace

// One client connection. The I/O thread owns fd/inbuf/broken; the outbox is
// shared with shard workers under out_mutex; the atomics let either side
// signal teardown without taking locks.
struct ScheddDaemon::Conn {
  uint64_t id = 0;
  int fd = -1;
  std::string inbuf;
  // Framing failure observed: remaining input is garbage, stop parsing.
  bool broken = false;

  std::mutex out_mutex;
  std::string outbuf;            // guarded by out_mutex
  bool close_after_flush = false;  // guarded by out_mutex

  std::atomic<bool> dead{false};   // removed from the poll set
  std::atomic<bool> kill{false};   // I/O thread must close (slow consumer)
  std::atomic<int> inflight{0};    // requests at a shard, response pending
};

struct ScheddDaemon::Request {
  std::shared_ptr<Conn> conn;
  Frame frame;
  uint64_t tenant_id = 0;
};

struct ScheddDaemon::Shard {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Request> queue;             // guarded by mutex
  std::map<uint64_t, size_t> pending;    // per-tenant queued count, guarded
  // Owned exclusively by this shard's worker thread once it starts (Start()
  // populates it from checkpoints before spawning).
  std::map<uint64_t, std::unique_ptr<TenantDomain>> tenants;
};

ScheddDaemon::ScheddDaemon(ScheddOptions options) : options_(std::move(options)) {
  if (options_.shards < 1) options_.shards = 1;
}

ScheddDaemon::~ScheddDaemon() {
  Stop();
  Wait();
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& [id, conn] : conns_) {
      if (conn->fd >= 0) close(conn->fd);
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
  if (!options_.socket_path.empty()) unlink(options_.socket_path.c_str());
}

std::string ScheddDaemon::TenantDir(uint64_t tenant_id) const {
  return options_.checkpoint_dir + "/tenant-" + std::to_string(tenant_id);
}

bool ScheddDaemon::RestoreTenants(std::string* error) {
  if (options_.checkpoint_dir.empty()) return true;
  std::error_code ec;
  if (!std::filesystem::is_directory(options_.checkpoint_dir, ec)) return true;
  for (const auto& entry : std::filesystem::directory_iterator(options_.checkpoint_dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    constexpr char kPrefix[] = "tenant-";
    if (name.rfind(kPrefix, 0) != 0) continue;
    char* end = nullptr;
    const uint64_t tenant_id = strtoull(name.c_str() + sizeof(kPrefix) - 1, &end, 10);
    if (end == nullptr || *end != '\0') continue;
    if (ListSnapshotFiles(entry.path().string()).empty()) {
      // Directory exists but nothing was ever durably written: the tenant
      // never survived a checkpoint, so there is nothing to restore.
      continue;
    }
    std::string restore_error;
    auto tenant = TenantDomain::RestoreNewest(entry.path().string(), &restore_error);
    if (!tenant) {
      if (error) *error = "tenant " + std::to_string(tenant_id) + ": " + restore_error;
      return false;
    }
    if (tenant->tenant_id() != tenant_id) {
      if (error) {
        *error = "tenant dir " + name + " holds snapshot for tenant " +
                 std::to_string(tenant->tenant_id());
      }
      return false;
    }
    Shard& shard = *shards_[tenant_id % shards_.size()];
    jobs_.fetch_add(tenant->num_jobs(), std::memory_order_relaxed);
    tenants_.fetch_add(1, std::memory_order_relaxed);
    restored_.fetch_add(1, std::memory_order_relaxed);
    shard.tenants[tenant_id] = std::move(tenant);
  }
  return true;
}

bool ScheddDaemon::Start(std::string* error) {
  if (options_.socket_path.empty()) {
    if (error) *error = "socket_path is required";
    return false;
  }
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path too long: " + options_.socket_path;
    return false;
  }

  shards_.clear();
  for (int i = 0; i < options_.shards; ++i) shards_.push_back(std::make_unique<Shard>());
  if (!RestoreTenants(error)) return false;

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0 || !SetNonBlocking(listen_fd_)) {
    if (error) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size());
  unlink(options_.socket_path.c_str());
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = "bind " + options_.socket_path + ": " + strerror(errno);
    return false;
  }
  if (listen(listen_fd_, 128) != 0) {
    if (error) *error = std::string("listen: ") + strerror(errno);
    return false;
  }
  if (pipe(wake_fds_) != 0 || !SetNonBlocking(wake_fds_[0]) || !SetNonBlocking(wake_fds_[1])) {
    if (error) *error = std::string("pipe: ") + strerror(errno);
    return false;
  }

  stop_.store(false, std::memory_order_relaxed);
  draining_.store(false, std::memory_order_relaxed);
  io_thread_ = std::thread([this] { IoLoop(); });
  for (int i = 0; i < options_.shards; ++i) {
    shard_threads_.emplace_back([this, i] { ShardLoop(i); });
  }
  return true;
}

void ScheddDaemon::RequestDrain() {
  draining_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->cv.notify_all();
  }
  WakeIo();
}

void ScheddDaemon::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->cv.notify_all();
  }
  WakeIo();
}

void ScheddDaemon::Wait() {
  for (auto& thread : shard_threads_) {
    if (thread.joinable()) thread.join();
  }
  if (!stop_.load(std::memory_order_relaxed)) {
    // Drain path: the shards have answered everything; give the I/O thread a
    // bounded window to flush the remaining outboxes to their clients.
    for (int i = 0; i < 200; ++i) {
      bool idle = true;
      {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        for (auto& [id, conn] : conns_) {
          std::lock_guard<std::mutex> out_lock(conn->out_mutex);
          if (!conn->outbuf.empty()) idle = false;
        }
      }
      if (idle) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop_.store(true, std::memory_order_relaxed);
    WakeIo();
  }
  if (io_thread_.joinable()) io_thread_.join();
}

ScheddStats ScheddDaemon::Stats() const {
  ScheddStats stats;
  stats.frames = frames_.load(std::memory_order_relaxed);
  stats.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  stats.malformed = malformed_.load(std::memory_order_relaxed);
  stats.sheds = sheds_.load(std::memory_order_relaxed);
  stats.drain_nacks = drain_nacks_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.conns_opened = conns_opened_.load(std::memory_order_relaxed);
  stats.conns_closed = conns_closed_.load(std::memory_order_relaxed);
  stats.slow_closed = slow_closed_.load(std::memory_order_relaxed);
  stats.tenants = tenants_.load(std::memory_order_relaxed);
  stats.jobs = jobs_.load(std::memory_order_relaxed);
  stats.rounds = rounds_.load(std::memory_order_relaxed);
  stats.degraded_rounds = degraded_rounds_.load(std::memory_order_relaxed);
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.restored = restored_.load(std::memory_order_relaxed);
  return stats;
}

void ScheddDaemon::WakeIo() {
  if (wake_fds_[1] < 0) return;
  const char byte = 0;
  // Nonblocking: a full pipe already guarantees a pending wakeup.
  (void)!write(wake_fds_[1], &byte, 1);
}

void ScheddDaemon::SendFrame(const std::shared_ptr<Conn>& conn, uint32_t type,
                             const std::string& payload) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  const std::string frame = EncodeFrame(type, payload);
  bool overflow = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    conn->outbuf += frame;
    overflow = conn->outbuf.size() > options_.outbox_cap_bytes;
  }
  if (overflow && !conn->kill.exchange(true, std::memory_order_relaxed)) {
    // Consumer stopped reading; cut it loose rather than buffer unboundedly.
    slow_closed_.fetch_add(1, std::memory_order_relaxed);
    ObsMetrics().slow_closed->Add();
  }
  WakeIo();
}

void ScheddDaemon::SendError(const std::shared_ptr<Conn>& conn, ErrCode code,
                             const std::string& detail) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  ObsMetrics().errors->Add();
  SendFrame(conn, kMsgError, EncodeError(code, detail));
}

void ScheddDaemon::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Conn>> polled;
  while (!stop_.load(std::memory_order_relaxed)) {
    fds.clear();
    polled.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      for (auto& [id, conn] : conns_) {
        short events = POLLIN;
        {
          std::lock_guard<std::mutex> out_lock(conn->out_mutex);
          if (!conn->outbuf.empty()) events |= POLLOUT;
        }
        fds.push_back({conn->fd, events, 0});
        polled.push_back(conn);
      }
    }
    const int ready = poll(fds.data(), fds.size(), 100);
    if (stop_.load(std::memory_order_relaxed)) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[1].revents & POLLIN) {
      for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!SetNonBlocking(fd)) {
          close(fd);
          continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conns_opened_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(conns_mutex_);
        conn->id = next_conn_id_++;
        conns_[conn->id] = conn;
      }
    }
    for (size_t i = 0; i < polled.size(); ++i) {
      const auto& conn = polled[i];
      if (conn->dead.load(std::memory_order_relaxed)) continue;
      if (conn->kill.load(std::memory_order_relaxed)) {
        CloseConn(conn->id);
        continue;
      }
      const short revents = fds[i + 2].revents;
      if (revents & POLLERR) {
        CloseConn(conn->id);
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) HandleReadable(conn);
      if (conn->dead.load(std::memory_order_relaxed)) continue;
      if (revents & POLLOUT) FlushConn(conn);
    }
  }
}

void ScheddDaemon::HandleReadable(const std::shared_ptr<Conn>& conn) {
  bool eof = false;
  char buf[65536];
  for (;;) {
    const ssize_t got = recv(conn->fd, buf, sizeof(buf), 0);
    if (got > 0) {
      if (!conn->broken) conn->inbuf.append(buf, static_cast<size_t>(got));
      continue;
    }
    if (got == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;
    break;
  }
  if (!conn->broken && !DrainInbuf(conn)) {
    // Framing desync: the typed error is already queued; nothing further on
    // this connection can be parsed.
    conn->broken = true;
    conn->inbuf.clear();
  }
  if (eof || conn->broken) {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    conn->close_after_flush = true;
  }
  FlushConn(conn);
}

bool ScheddDaemon::DrainInbuf(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    const FrameStatus status =
        DecodeFrame(conn->inbuf, options_.max_frame_bytes, &frame, &consumed);
    switch (status) {
      case FrameStatus::kNeedMore:
        return true;
      case FrameStatus::kOk:
        conn->inbuf.erase(0, consumed);
        DispatchFrame(conn, std::move(frame));
        continue;
      case FrameStatus::kBadMagic:
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        ObsMetrics().bad_frames->Add();
        SendError(conn, kErrBadMagic, "frame magic mismatch");
        return false;
      case FrameStatus::kOversized:
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        ObsMetrics().bad_frames->Add();
        SendError(conn, kErrOversized, "frame exceeds max payload");
        return false;
      case FrameStatus::kBadCrc:
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        ObsMetrics().bad_frames->Add();
        SendError(conn, kErrBadCrc, "frame crc mismatch");
        return false;
    }
  }
}

void ScheddDaemon::DispatchFrame(const std::shared_ptr<Conn>& conn, Frame frame) {
  frames_.fetch_add(1, std::memory_order_relaxed);
  ObsMetrics().frames->Add();
  switch (frame.type) {
    case kMsgPing:
      SendFrame(conn, kMsgPong, "");
      return;
    case kMsgHello: {
      BinReader in(frame.payload);
      const uint32_t version = in.GetU32();
      if (!in.ok()) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, kErrMalformedPayload, "hello");
        return;
      }
      if (version != kProtocolVersion) {
        SendError(conn, kErrVersionMismatch,
                  "daemon speaks protocol " + std::to_string(kProtocolVersion));
        return;
      }
      BinWriter out;
      out.PutU32(kProtocolVersion);
      SendFrame(conn, kMsgHelloOk, out.str());
      return;
    }
    case kMsgStats: {
      const ScheddStats stats = Stats();
      const std::pair<const char*, uint64_t> rows[] = {
          {"bad_frames", stats.bad_frames},
          {"checkpoints", stats.checkpoints},
          {"conns_closed", stats.conns_closed},
          {"conns_opened", stats.conns_opened},
          {"degraded_rounds", stats.degraded_rounds},
          {"drain_nacks", stats.drain_nacks},
          {"errors", stats.errors},
          {"frames", stats.frames},
          {"jobs", stats.jobs},
          {"malformed", stats.malformed},
          {"restored", stats.restored},
          {"rounds", stats.rounds},
          {"sheds", stats.sheds},
          {"slow_closed", stats.slow_closed},
          {"tenants", stats.tenants},
      };
      BinWriter out;
      out.PutU64(std::size(rows));
      for (const auto& [key, value] : rows) {
        out.PutString(key);
        out.PutU64(value);
      }
      SendFrame(conn, kMsgStatsReply, out.str());
      return;
    }
    case kMsgCreateTenant:
    case kMsgSubmitJob:
    case kMsgCancelJob:
    case kMsgReport:
    case kMsgRunRound: {
      BinReader in(frame.payload);
      const uint64_t tenant_id = in.GetU64();
      if (!in.ok()) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, kErrMalformedPayload, "missing tenant id");
        return;
      }
      if (draining_.load(std::memory_order_relaxed)) {
        drain_nacks_.fetch_add(1, std::memory_order_relaxed);
        ObsMetrics().nacks->Add();
        SendFrame(conn, kMsgNack, EncodeNack(kNackDraining, "daemon draining"));
        return;
      }
      Shard& shard = *shards_[tenant_id % shards_.size()];
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        size_t& pending = shard.pending[tenant_id];
        if (pending >= options_.ingest_queue_cap) {
          sheds_.fetch_add(1, std::memory_order_relaxed);
          ObsMetrics().sheds->Add();
          ObsMetrics().nacks->Add();
          SendFrame(conn, kMsgNack, EncodeNack(kNackQueueFull, "tenant queue full"));
          return;
        }
        ++pending;
        ObsMetrics().queue_depth->Set(static_cast<double>(pending));
        conn->inflight.fetch_add(1, std::memory_order_relaxed);
        shard.queue.push_back(Request{conn, std::move(frame), tenant_id});
        shard.cv.notify_one();
      }
      return;
    }
    default:
      SendError(conn, kErrUnknownType, "type " + std::to_string(frame.type));
      return;
  }
}

void ScheddDaemon::ShardLoop(int shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    Request request;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.cv.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) || !shard.queue.empty() ||
               draining_.load(std::memory_order_relaxed);
      });
      if (stop_.load(std::memory_order_relaxed)) return;  // drop queued work
      if (shard.queue.empty()) {
        if (draining_.load(std::memory_order_relaxed)) break;  // drained
        continue;
      }
      request = std::move(shard.queue.front());
      shard.queue.pop_front();
      auto it = shard.pending.find(request.tenant_id);
      if (it != shard.pending.end() && --it->second == 0) shard.pending.erase(it);
    }
    ProcessRequest(shard, request);
    request.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
  }
  // Graceful drain: a final durable checkpoint per tenant before exit.
  if (!options_.checkpoint_dir.empty()) {
    for (const auto& [tenant_id, tenant] : shard.tenants) CheckpointTenant(*tenant);
  }
}

void ScheddDaemon::CheckpointTenant(const TenantDomain& tenant) {
  std::string error;
  if (tenant.SaveCheckpoint(TenantDir(tenant.tenant_id()), options_.checkpoint_keep, &error)) {
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    ObsMetrics().checkpoints->Add();
  } else {
    fprintf(stderr, "pollux_schedd: checkpoint tenant %llu failed: %s\n",
            static_cast<unsigned long long>(tenant.tenant_id()), error.c_str());
  }
}

void ScheddDaemon::ProcessRequest(Shard& shard, Request& request) {
  BinReader in(request.frame.payload);
  const uint64_t tenant_id = in.GetU64();
  TenantDomain* tenant = nullptr;
  if (auto it = shard.tenants.find(tenant_id); it != shard.tenants.end()) {
    tenant = it->second.get();
  }

  switch (request.frame.type) {
    case kMsgCreateTenant: {
      TenantSetup setup;
      setup.tenant_id = tenant_id;
      if (!GetTenantSetup(in, &setup) || !in.AtEnd()) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        SendError(request.conn, kErrMalformedPayload, "create_tenant");
        return;
      }
      if (tenant != nullptr) {
        // Idempotent re-create: same shape acks, a different shape is a
        // client bug we refuse rather than silently reconfigure.
        BinWriter existing, proposed;
        PutTenantSetup(existing, tenant->setup());
        PutTenantSetup(proposed, setup);
        if (existing.str() == proposed.str()) {
          BinWriter out;
          out.PutU64(0);
          SendFrame(request.conn, kMsgAck, out.str());
        } else {
          SendError(request.conn, kErrTenantMismatch, "tenant exists with different setup");
        }
        return;
      }
      shard.tenants[tenant_id] = std::make_unique<TenantDomain>(std::move(setup));
      tenants_.fetch_add(1, std::memory_order_relaxed);
      BinWriter out;
      out.PutU64(0);
      SendFrame(request.conn, kMsgAck, out.str());
      return;
    }
    case kMsgSubmitJob: {
      AgentReport agent = GetAgentReport(in);
      const double gpu_time = in.GetDouble();
      if (!in.ok() || !in.AtEnd()) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        SendError(request.conn, kErrMalformedPayload, "submit_job");
        return;
      }
      if (tenant == nullptr) {
        SendError(request.conn, kErrUnknownTenant, std::to_string(tenant_id));
        return;
      }
      const size_t jobs_before = tenant->num_jobs();
      tenant->SubmitJob(agent, gpu_time);
      jobs_.fetch_add(tenant->num_jobs() - jobs_before, std::memory_order_relaxed);
      BinWriter out;
      out.PutU64(1);
      SendFrame(request.conn, kMsgAck, out.str());
      return;
    }
    case kMsgCancelJob: {
      const uint64_t job_id = in.GetU64();
      if (!in.ok() || !in.AtEnd()) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        SendError(request.conn, kErrMalformedPayload, "cancel_job");
        return;
      }
      if (tenant == nullptr) {
        SendError(request.conn, kErrUnknownTenant, std::to_string(tenant_id));
        return;
      }
      if (!tenant->CancelJob(job_id)) {
        SendError(request.conn, kErrUnknownJob, std::to_string(job_id));
        return;
      }
      jobs_.fetch_sub(1, std::memory_order_relaxed);
      BinWriter out;
      out.PutU64(1);
      SendFrame(request.conn, kMsgAck, out.str());
      return;
    }
    case kMsgReport: {
      const double start = NowSeconds();
      const uint64_t count = in.GetU64();
      if (!in.ok() || count > kMaxBatch) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        SendError(request.conn, kErrMalformedPayload, "report batch");
        return;
      }
      if (tenant == nullptr) {
        SendError(request.conn, kErrUnknownTenant, std::to_string(tenant_id));
        return;
      }
      uint64_t accepted = 0;
      for (uint64_t i = 0; i < count && in.ok(); ++i) {
        const SchedJobReport report = GetSchedJobReport(in);
        if (in.ok() && tenant->Ingest(report)) ++accepted;
      }
      if (!in.ok() || !in.AtEnd()) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        SendError(request.conn, kErrMalformedPayload, "report batch");
        return;
      }
      ObsMetrics().ingest_seconds->Record(NowSeconds() - start);
      BinWriter out;
      out.PutU64(accepted);
      SendFrame(request.conn, kMsgAck, out.str());
      return;
    }
    case kMsgRunRound: {
      const uint64_t round = in.GetU64();
      if (!in.ok() || !in.AtEnd()) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        SendError(request.conn, kErrMalformedPayload, "run_round");
        return;
      }
      if (tenant == nullptr) {
        SendError(request.conn, kErrUnknownTenant, std::to_string(tenant_id));
        return;
      }
      RoundDecisions decisions;
      const double start = NowSeconds();
      const TenantDomain::RoundStatus status = tenant->RunRound(round, &decisions);
      switch (status) {
        case TenantDomain::RoundStatus::kBadRound:
          SendError(request.conn, kErrBadRound,
                    "expected round " + std::to_string(tenant->next_round()));
          return;
        case TenantDomain::RoundStatus::kExecuted: {
          ObsMetrics().round_seconds->Record(NowSeconds() - start);
          rounds_.fetch_add(1, std::memory_order_relaxed);
          if (decisions.degraded) degraded_rounds_.fetch_add(1, std::memory_order_relaxed);
          const int every = options_.checkpoint_every_rounds;
          if (!options_.checkpoint_dir.empty() && every > 0 &&
              tenant->next_round() % static_cast<uint64_t>(every) == 0) {
            CheckpointTenant(*tenant);
          }
          break;
        }
        case TenantDomain::RoundStatus::kCached:
          break;
      }
      SendFrame(request.conn, kMsgDecisions, EncodeDecisionsPayload(decisions));
      return;
    }
    default:
      SendError(request.conn, kErrUnknownType, "type " + std::to_string(request.frame.type));
      return;
  }
}

void ScheddDaemon::FlushConn(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mutex);
    while (!conn->outbuf.empty()) {
      const ssize_t sent =
          send(conn->fd, conn->outbuf.data(), conn->outbuf.size(), MSG_NOSIGNAL);
      if (sent > 0) {
        conn->outbuf.erase(0, static_cast<size_t>(sent));
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (sent < 0 && errno == EINTR) continue;
      close_now = true;  // peer gone (EPIPE/ECONNRESET/...)
      break;
    }
    if (conn->outbuf.empty() && conn->close_after_flush &&
        conn->inflight.load(std::memory_order_relaxed) == 0) {
      close_now = true;
    }
  }
  if (close_now) CloseConn(conn->id);
}

void ScheddDaemon::CloseConn(uint64_t conn_id) {
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    conn = it->second;
    conns_.erase(it);
  }
  conn->dead.store(true, std::memory_order_relaxed);
  if (conn->fd >= 0) {
    close(conn->fd);
    conn->fd = -1;
  }
  conns_closed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace service
}  // namespace pollux
