// One tenant's scheduling domain inside pollux_schedd (DESIGN.md §15).
//
// A TenantDomain owns an independent PolluxSched instance, the tenant's job
// table (latest telemetry per job), and the round sequence. It is single-
// threaded by construction: the daemon shards tenants across worker threads
// (tenant_id % shards) and each domain is only ever touched by its shard's
// worker, so no locking happens here.
//
// Crash tolerance contract:
//  * RunRound is idempotent at the protocol level: executing round R advances
//    next_round to R+1 and caches R's decisions; a replayed RunRound(R) —
//    e.g. a client retrying after the daemon's response was lost to a crash —
//    returns the cached decisions without re-running the scheduler.
//  * EncodeSnapshot/FromSnapshot round-trip the complete domain byte-
//    identically (asserted by service_tenant_test), so a kill -9 followed by
//    RestoreNewest() warm-restores the tenant and every subsequent round
//    takes decisions identical to an uninterrupted daemon's.
//  * Snapshots ride the v3 container from sim/checkpoint (magic + CRC +
//    atomic rename), one kTagService section per file, newest-first fallback
//    past torn or corrupt files.

#ifndef POLLUX_SERVICE_TENANT_H_
#define POLLUX_SERVICE_TENANT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sched.h"
#include "sim/checkpoint.h"

namespace pollux {
namespace service {

// Bumped when the kTagService payload layout changes; future versions are
// rejected with a clear error instead of being misparsed.
inline constexpr uint32_t kTenantSnapshotVersion = 1;

// Everything needed to (re)construct a tenant's scheduler: the cluster it
// schedules and the PolluxSched configuration. Travels in the CreateTenant
// request and at the front of every tenant snapshot.
struct TenantSetup {
  uint64_t tenant_id = 0;
  ClusterSpec cluster;
  SchedConfig sched;
};

// Codec for the setup minus the tenant id (the id is framed by the caller).
// GetTenantSetup validates shape (non-empty cluster, sane sizes) and sets the
// reader's failure flag on malformed input.
void PutTenantSetup(BinWriter& out, const TenantSetup& setup);
bool GetTenantSetup(BinReader& in, TenantSetup* setup);

// The outcome of one scheduling round, as returned to clients. `rows` is the
// scheduler's sparse decision map: a job omitted keeps its allocation.
struct RoundDecisions {
  uint64_t round = 0;
  bool degraded = false;  // round fell back / ran degraded (frozen warm rows)
  bool cached = false;    // replay of an already-executed round
  double utility = 0.0;
  std::map<uint64_t, std::vector<int>> rows;
};

// kMsgDecisions payload codec (u64 round, u32 flags, f64 utility, rows),
// shared by the daemon (encode) and client (decode). The flags word carries
// kDecisionDegraded/kDecisionCached from wire.h.
std::string EncodeDecisionsPayload(const RoundDecisions& decisions);
bool DecodeDecisionsPayload(const std::string& payload, RoundDecisions* decisions);

class TenantDomain {
 public:
  explicit TenantDomain(TenantSetup setup);

  uint64_t tenant_id() const { return setup_.tenant_id; }
  const TenantSetup& setup() const { return setup_; }
  uint64_t next_round() const { return next_round_; }
  size_t num_jobs() const { return jobs_.size(); }

  // Registers (or re-registers) a job with its initial goodput report. A
  // fresh job holds no GPUs until a round places it.
  void SubmitJob(const AgentReport& agent, double gpu_time);

  // Removes the job and frees its allocation. False when unknown.
  bool CancelJob(uint64_t job_id);

  // Updates a known job's telemetry (goodput model, gpu_time, report age,
  // sequence number). The daemon stays authoritative for allocations — the
  // report's allocation field is ignored, so a confused or hostile client
  // cannot conjure GPUs. False (counted) when the job is unknown.
  bool Ingest(const SchedJobReport& report);

  enum class RoundStatus {
    kExecuted,  // round == next_round: scheduler ran, decisions applied
    kCached,    // round == last executed: cached decisions replayed
    kBadRound,  // anything else: client and daemon disagree on the sequence
  };
  RoundStatus RunRound(uint64_t round, RoundDecisions* out);

  // Cumulative accounting (survives snapshots).
  uint64_t submits() const { return submits_; }
  uint64_t cancels() const { return cancels_; }
  uint64_t reports_ingested() const { return reports_; }
  uint64_t reports_rejected() const { return rejected_reports_; }
  uint64_t rounds() const { return rounds_; }
  const PolluxSched& sched() const { return sched_; }

  // kTagService payload: the complete domain state.
  std::string EncodeSnapshot() const;
  static std::unique_ptr<TenantDomain> FromSnapshot(const std::string& payload,
                                                    std::string* error);

  // Writes one snapshot file into `dir` (created if missing) through the
  // atomic tmp+rename path, then prunes all but the newest `keep` snapshots.
  bool SaveCheckpoint(const std::string& dir, int keep, std::string* error) const;

  // Restores the newest fully-valid snapshot in `dir`, skipping torn/corrupt
  // files (sim/checkpoint's ResolveSnapshotPath semantics).
  static std::unique_ptr<TenantDomain> RestoreNewest(const std::string& dir,
                                                     std::string* error);

 private:
  TenantSetup setup_;
  PolluxSched sched_;
  // job id -> latest telemetry; current_allocation is daemon-owned.
  std::map<uint64_t, SchedJobReport> jobs_;
  uint64_t next_round_ = 0;
  bool has_last_ = false;
  RoundDecisions last_;
  uint64_t submits_ = 0;
  uint64_t cancels_ = 0;
  uint64_t reports_ = 0;
  uint64_t rejected_reports_ = 0;
  uint64_t rounds_ = 0;
};

}  // namespace service
}  // namespace pollux

#endif  // POLLUX_SERVICE_TENANT_H_
