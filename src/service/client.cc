#include "service/client.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace pollux {
namespace service {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ScheddClient::ScheddClient(ScheddClientOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {}

ScheddClient::~ScheddClient() { Disconnect(); }

void ScheddClient::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  inbuf_.clear();
}

bool ScheddClient::Connect(std::string* error) {
  Disconnect();
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "socket path too long";
    return false;
  }
  fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size());
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = "connect " + options_.socket_path + ": " + strerror(errno);
    Disconnect();
    return false;
  }
  // Version handshake.
  BinWriter hello;
  hello.PutU32(kProtocolVersion);
  if (!SendAll(EncodeFrame(kMsgHello, hello.str()), error)) {
    Disconnect();
    return false;
  }
  Frame frame;
  if (!ReadFrame(NowSeconds() + options_.request_timeout, &frame, error)) {
    Disconnect();
    return false;
  }
  if (frame.type != kMsgHelloOk) {
    uint32_t code = 0;
    std::string detail;
    if (frame.type == kMsgError && DecodeErrorPayload(frame.payload, &code, &detail)) {
      if (error) *error = "handshake refused: " + detail;
    } else if (error) {
      *error = "unexpected handshake reply type " + std::to_string(frame.type);
    }
    Disconnect();
    return false;
  }
  return true;
}

bool ScheddClient::SendAll(const std::string& bytes, std::string* error) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t sent =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (sent > 0) {
      off += static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (error) *error = std::string("send: ") + strerror(errno);
    return false;
  }
  return true;
}

bool ScheddClient::ReadFrame(double deadline, Frame* frame, std::string* error) {
  for (;;) {
    size_t consumed = 0;
    const FrameStatus status =
        DecodeFrame(inbuf_, kDefaultMaxFrameBytes, frame, &consumed);
    if (status == FrameStatus::kOk) {
      inbuf_.erase(0, consumed);
      return true;
    }
    if (status != FrameStatus::kNeedMore) {
      if (error) *error = std::string("response framing: ") + FrameStatusName(status);
      return false;
    }
    const double remaining = deadline - NowSeconds();
    if (remaining <= 0) {
      if (error) *error = "deadline exceeded";
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>(std::min(remaining * 1000.0, 3600.0 * 1000.0)) + 1;
    const int ready = poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      if (error) *error = std::string("poll: ") + strerror(errno);
      return false;
    }
    if (ready == 0) {
      if (error) *error = "deadline exceeded";
      return false;
    }
    char buf[65536];
    const ssize_t got = recv(fd_, buf, sizeof(buf), 0);
    if (got > 0) {
      inbuf_.append(buf, static_cast<size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (error) *error = got == 0 ? "connection closed" : std::string("recv: ") + strerror(errno);
    return false;
  }
}

void ScheddClient::BackoffSleep(int attempt, double deadline) {
  double wait = options_.backoff_initial;
  for (int i = 0; i < attempt && wait < options_.backoff_max; ++i) wait *= 2.0;
  wait = std::min(wait, options_.backoff_max);
  wait *= jitter_.Uniform(0.5, 1.0);
  wait = std::min(wait, std::max(0.0, deadline - NowSeconds()));
  if (wait > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
  }
}

bool ScheddClient::Request(uint32_t type, const std::string& payload, uint32_t* reply_type,
                           std::string* reply_payload, std::string* error) {
  ++stats_.requests;
  const double deadline = NowSeconds() + options_.request_timeout;
  std::string last_error = "not connected";
  for (int attempt = 0;; ++attempt) {
    if (NowSeconds() >= deadline) {
      ++stats_.timeouts;
      if (error) *error = "deadline exceeded (" + last_error + ")";
      return false;
    }
    if (attempt > 0) ++stats_.retries;
    if (fd_ < 0) {
      if (!Connect(&last_error)) {
        BackoffSleep(attempt, deadline);
        continue;
      }
      if (attempt > 0) ++stats_.reconnects;
    }
    Frame frame;
    if (!SendAll(EncodeFrame(type, payload), &last_error) ||
        !ReadFrame(deadline, &frame, &last_error)) {
      // A torn exchange: the daemon may or may not have applied the request,
      // but every request is idempotent, so reconnect and resend.
      Disconnect();
      BackoffSleep(attempt, deadline);
      continue;
    }
    if (frame.type == kMsgNack) {
      ++stats_.nacks;
      uint32_t reason = 0;
      std::string detail;
      DecodeErrorPayload(frame.payload, &reason, &detail);
      last_error = "nack: " + detail;
      BackoffSleep(attempt, deadline);
      continue;
    }
    *reply_type = frame.type;
    *reply_payload = std::move(frame.payload);
    return true;
  }
}

bool ScheddClient::ExpectAck(uint32_t type, const std::string& payload, uint64_t* value,
                             std::string* error) {
  uint32_t reply_type = 0;
  std::string reply_payload;
  if (!Request(type, payload, &reply_type, &reply_payload, error)) return false;
  if (reply_type == kMsgError) {
    uint32_t code = 0;
    std::string detail;
    DecodeErrorPayload(reply_payload, &code, &detail);
    if (error) {
      *error = std::string(ErrCodeName(static_cast<ErrCode>(code))) + ": " + detail;
    }
    return false;
  }
  if (reply_type != kMsgAck) {
    if (error) *error = "unexpected reply type " + std::to_string(reply_type);
    return false;
  }
  BinReader in(reply_payload);
  const uint64_t got = in.GetU64();
  if (value) *value = got;
  return true;
}

bool ScheddClient::CreateTenant(const TenantSetup& setup, std::string* error) {
  BinWriter out;
  out.PutU64(setup.tenant_id);
  PutTenantSetup(out, setup);
  return ExpectAck(kMsgCreateTenant, out.str(), nullptr, error);
}

bool ScheddClient::SubmitJob(uint64_t tenant_id, const AgentReport& agent, double gpu_time,
                             std::string* error) {
  BinWriter out;
  out.PutU64(tenant_id);
  PutAgentReport(out, agent);
  out.PutDouble(gpu_time);
  return ExpectAck(kMsgSubmitJob, out.str(), nullptr, error);
}

bool ScheddClient::CancelJob(uint64_t tenant_id, uint64_t job_id, std::string* error) {
  BinWriter out;
  out.PutU64(tenant_id);
  out.PutU64(job_id);
  return ExpectAck(kMsgCancelJob, out.str(), nullptr, error);
}

bool ScheddClient::Report(uint64_t tenant_id, const std::vector<SchedJobReport>& reports,
                          uint64_t* accepted, std::string* error) {
  BinWriter out;
  out.PutU64(tenant_id);
  out.PutU64(reports.size());
  for (const auto& report : reports) PutSchedJobReport(out, report);
  return ExpectAck(kMsgReport, out.str(), accepted, error);
}

bool ScheddClient::RunRound(uint64_t tenant_id, uint64_t round, RoundDecisions* decisions,
                            std::string* error) {
  BinWriter out;
  out.PutU64(tenant_id);
  out.PutU64(round);
  uint32_t reply_type = 0;
  std::string reply_payload;
  if (!Request(kMsgRunRound, out.str(), &reply_type, &reply_payload, error)) return false;
  if (reply_type == kMsgError) {
    uint32_t code = 0;
    std::string detail;
    DecodeErrorPayload(reply_payload, &code, &detail);
    if (error) {
      *error = std::string(ErrCodeName(static_cast<ErrCode>(code))) + ": " + detail;
    }
    return false;
  }
  if (reply_type != kMsgDecisions || !DecodeDecisionsPayload(reply_payload, decisions)) {
    if (error) *error = "malformed decisions reply";
    return false;
  }
  return true;
}

bool ScheddClient::Stats(std::map<std::string, uint64_t>* stats, std::string* error) {
  uint32_t reply_type = 0;
  std::string reply_payload;
  if (!Request(kMsgStats, "", &reply_type, &reply_payload, error)) return false;
  if (reply_type != kMsgStatsReply) {
    if (error) *error = "unexpected reply type " + std::to_string(reply_type);
    return false;
  }
  BinReader in(reply_payload);
  const uint64_t count = in.GetU64();
  if (count > (uint64_t{1} << 16)) {
    if (error) *error = "malformed stats reply";
    return false;
  }
  stats->clear();
  for (uint64_t i = 0; i < count && in.ok(); ++i) {
    const std::string key = in.GetString();
    (*stats)[key] = in.GetU64();
  }
  if (!in.ok()) {
    if (error) *error = "malformed stats reply";
    return false;
  }
  return true;
}

bool ScheddClient::Ping(std::string* error) {
  uint32_t reply_type = 0;
  std::string reply_payload;
  if (!Request(kMsgPing, "", &reply_type, &reply_payload, error)) return false;
  if (reply_type != kMsgPong) {
    if (error) *error = "unexpected reply type " + std::to_string(reply_type);
    return false;
  }
  return true;
}

ScheddClient::RawReply ScheddClient::Call(uint32_t type, const std::string& payload) {
  RawReply reply;
  if (fd_ < 0 && !Connect(&reply.error)) return reply;
  if (!SendAll(EncodeFrame(type, payload), &reply.error)) return reply;
  Frame frame;
  if (!ReadFrame(NowSeconds() + options_.request_timeout, &frame, &reply.error)) {
    return reply;
  }
  reply.ok = true;
  reply.type = frame.type;
  reply.payload = std::move(frame.payload);
  return reply;
}

}  // namespace service
}  // namespace pollux
