#include "service/tenant.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "service/wire.h"

namespace pollux {
namespace service {
namespace {

// Absurd-size guard for decoded containers; matches the checkpoint codecs.
constexpr uint64_t kMaxReasonable = uint64_t{1} << 20;

void PutClusterSpec(BinWriter& out, const ClusterSpec& cluster) {
  out.PutIntVec(cluster.gpus_per_node);
  out.PutIntVec(cluster.rack_of_node);
  out.PutIntVec(cluster.gpu_type_of_node);
  out.PutU64(cluster.node_gpu_scale.size());
  for (double scale : cluster.node_gpu_scale) out.PutDouble(scale);
  out.PutDouble(cluster.rack_link_factor);
}

bool GetClusterSpec(BinReader& in, ClusterSpec* cluster) {
  cluster->gpus_per_node = in.GetIntVec();
  cluster->rack_of_node = in.GetIntVec();
  cluster->gpu_type_of_node = in.GetIntVec();
  const uint64_t num_scales = in.GetU64();
  if (num_scales > kMaxReasonable) {
    in.MarkBad();
    return false;
  }
  cluster->node_gpu_scale.resize(num_scales);
  for (uint64_t i = 0; i < num_scales && in.ok(); ++i) {
    cluster->node_gpu_scale[i] = in.GetDouble();
  }
  cluster->rack_link_factor = in.GetDouble();
  if (!in.ok()) return false;
  // Shape validation: a tenant must schedule a real cluster, annotations (when
  // present) must be per-node, and capacities must be non-negative.
  const size_t nodes = cluster->gpus_per_node.size();
  if (nodes == 0 || nodes > kMaxReasonable) {
    in.MarkBad();
    return false;
  }
  for (int gpus : cluster->gpus_per_node) {
    if (gpus < 0) {
      in.MarkBad();
      return false;
    }
  }
  if (!cluster->rack_of_node.empty() && cluster->rack_of_node.size() != nodes) {
    in.MarkBad();
    return false;
  }
  if (!cluster->gpu_type_of_node.empty() && cluster->gpu_type_of_node.size() != nodes) {
    in.MarkBad();
    return false;
  }
  if (!cluster->node_gpu_scale.empty() && cluster->node_gpu_scale.size() != nodes) {
    in.MarkBad();
    return false;
  }
  return true;
}

void PutSchedConfig(BinWriter& out, const SchedConfig& config) {
  out.PutI64(config.ga.population_size);
  out.PutI64(config.ga.generations);
  out.PutI64(config.ga.tournament_size);
  out.PutDouble(config.ga.restart_penalty);
  out.PutBool(config.ga.interference_avoidance);
  out.PutU64(config.ga.seed);
  out.PutBool(config.ga.memoize);
  out.PutDouble(config.gpu_time_threshold);
  out.PutDouble(config.weight_lambda);
  out.PutBool(config.memoize_tables);
  out.PutDouble(config.round_time_budget);
  out.PutDouble(config.stale_report_age);
  out.PutDouble(config.report_interval);
  out.PutI64(config.lease_intervals);
  out.PutDouble(config.lease_grace);
  out.PutDouble(config.degraded_coverage);
  out.PutBool(config.naive_masking);
  out.PutString(SchedModeName(config.mode));
  out.PutDouble(config.dirty_rel_change);
  out.PutI64(config.shard_jobs);
  out.PutI64(config.refresh_rounds);
  out.PutBool(config.queue_admission);
}

bool GetSchedConfig(BinReader& in, SchedConfig* config) {
  config->ga.population_size = static_cast<int>(in.GetI64());
  config->ga.generations = static_cast<int>(in.GetI64());
  config->ga.tournament_size = static_cast<int>(in.GetI64());
  config->ga.restart_penalty = in.GetDouble();
  config->ga.interference_avoidance = in.GetBool();
  config->ga.seed = in.GetU64();
  config->ga.memoize = in.GetBool();
  // Shard workers already parallelize across tenants; each tenant's GA stays
  // serial so decisions never depend on the daemon's thread count.
  config->ga.threads = 1;
  config->gpu_time_threshold = in.GetDouble();
  config->weight_lambda = in.GetDouble();
  config->memoize_tables = in.GetBool();
  config->round_time_budget = in.GetDouble();
  config->stale_report_age = in.GetDouble();
  config->report_interval = in.GetDouble();
  config->lease_intervals = static_cast<int>(in.GetI64());
  config->lease_grace = in.GetDouble();
  config->degraded_coverage = in.GetDouble();
  config->naive_masking = in.GetBool();
  const std::string mode = in.GetString();
  if (!SchedModeByName(mode, &config->mode)) {
    in.MarkBad();
    return false;
  }
  config->dirty_rel_change = in.GetDouble();
  config->shard_jobs = static_cast<int>(in.GetI64());
  config->refresh_rounds = static_cast<int>(in.GetI64());
  config->queue_admission = in.GetBool();
  if (!in.ok()) return false;
  // GA budget sanity: a hostile CreateTenant must not be able to request a
  // round that effectively never terminates or divides by zero.
  if (config->ga.population_size < 1 || config->ga.population_size > 100000 ||
      config->ga.generations < 0 || config->ga.generations > 100000 ||
      config->ga.tournament_size < 1) {
    in.MarkBad();
    return false;
  }
  return true;
}

void PutRoundDecisions(BinWriter& out, const RoundDecisions& decisions) {
  out.PutU64(decisions.round);
  out.PutBool(decisions.degraded);
  out.PutDouble(decisions.utility);
  out.PutU64(decisions.rows.size());
  for (const auto& [job_id, row] : decisions.rows) {
    out.PutU64(job_id);
    out.PutIntVec(row);
  }
}

bool GetRoundDecisions(BinReader& in, RoundDecisions* decisions) {
  decisions->round = in.GetU64();
  decisions->degraded = in.GetBool();
  decisions->cached = false;
  decisions->utility = in.GetDouble();
  const uint64_t num_rows = in.GetU64();
  if (num_rows > kMaxReasonable) {
    in.MarkBad();
    return false;
  }
  decisions->rows.clear();
  for (uint64_t i = 0; i < num_rows && in.ok(); ++i) {
    const uint64_t job_id = in.GetU64();
    decisions->rows[job_id] = in.GetIntVec();
  }
  return in.ok();
}

}  // namespace

std::string EncodeDecisionsPayload(const RoundDecisions& decisions) {
  BinWriter out;
  out.PutU64(decisions.round);
  uint32_t flags = 0;
  if (decisions.degraded) flags |= kDecisionDegraded;
  if (decisions.cached) flags |= kDecisionCached;
  out.PutU32(flags);
  out.PutDouble(decisions.utility);
  out.PutU64(decisions.rows.size());
  for (const auto& [job_id, row] : decisions.rows) {
    out.PutU64(job_id);
    out.PutIntVec(row);
  }
  return out.str();
}

bool DecodeDecisionsPayload(const std::string& payload, RoundDecisions* decisions) {
  BinReader in(payload);
  decisions->round = in.GetU64();
  const uint32_t flags = in.GetU32();
  decisions->degraded = (flags & kDecisionDegraded) != 0;
  decisions->cached = (flags & kDecisionCached) != 0;
  decisions->utility = in.GetDouble();
  const uint64_t num_rows = in.GetU64();
  if (!in.ok() || num_rows > kMaxReasonable) return false;
  decisions->rows.clear();
  for (uint64_t i = 0; i < num_rows && in.ok(); ++i) {
    const uint64_t job_id = in.GetU64();
    decisions->rows[job_id] = in.GetIntVec();
  }
  return in.ok() && in.AtEnd();
}

void PutTenantSetup(BinWriter& out, const TenantSetup& setup) {
  PutClusterSpec(out, setup.cluster);
  PutSchedConfig(out, setup.sched);
}

bool GetTenantSetup(BinReader& in, TenantSetup* setup) {
  if (!GetClusterSpec(in, &setup->cluster)) return false;
  return GetSchedConfig(in, &setup->sched);
}

TenantDomain::TenantDomain(TenantSetup setup)
    : setup_(std::move(setup)), sched_(setup_.cluster, setup_.sched) {}

void TenantDomain::SubmitJob(const AgentReport& agent, double gpu_time) {
  SchedJobReport report;
  report.agent = agent;
  report.gpu_time = gpu_time;
  jobs_[agent.job_id] = std::move(report);
  ++submits_;
}

bool TenantDomain::CancelJob(uint64_t job_id) {
  if (jobs_.erase(job_id) == 0) return false;
  ++cancels_;
  return true;
}

bool TenantDomain::Ingest(const SchedJobReport& report) {
  auto it = jobs_.find(report.agent.job_id);
  if (it == jobs_.end()) {
    ++rejected_reports_;
    return false;
  }
  // Allocation stays daemon-owned; everything else refreshes.
  it->second.agent = report.agent;
  it->second.gpu_time = report.gpu_time;
  it->second.report_age = report.report_age;
  it->second.seq = report.seq;
  ++reports_;
  return true;
}

TenantDomain::RoundStatus TenantDomain::RunRound(uint64_t round, RoundDecisions* out) {
  if (has_last_ && round == last_.round) {
    *out = last_;
    out->cached = true;
    return RoundStatus::kCached;
  }
  if (round != next_round_) return RoundStatus::kBadRound;

  std::vector<SchedJobReport> reports;
  reports.reserve(jobs_.size());
  for (const auto& [job_id, report] : jobs_) reports.push_back(report);

  const uint64_t fallback_before = sched_.fallback_rounds();
  const uint64_t degraded_before = sched_.degraded_rounds();
  auto decisions = sched_.Schedule(reports);
  for (const auto& [job_id, row] : decisions) {
    auto it = jobs_.find(job_id);
    if (it != jobs_.end()) it->second.current_allocation = row;
  }

  last_.round = round;
  last_.degraded = sched_.fallback_rounds() > fallback_before ||
                   sched_.degraded_rounds() > degraded_before;
  last_.cached = false;
  last_.utility = sched_.last_utility();
  last_.rows = std::move(decisions);
  has_last_ = true;
  next_round_ = round + 1;
  ++rounds_;
  *out = last_;
  return RoundStatus::kExecuted;
}

std::string TenantDomain::EncodeSnapshot() const {
  BinWriter out;
  out.PutU32(kTenantSnapshotVersion);
  out.PutU64(setup_.tenant_id);
  PutTenantSetup(out, setup_);
  out.PutU64(next_round_);
  out.PutBool(has_last_);
  if (has_last_) PutRoundDecisions(out, last_);
  out.PutU64(jobs_.size());
  for (const auto& [job_id, report] : jobs_) {
    out.PutU64(job_id);
    PutSchedJobReport(out, report);
  }
  const PolluxSched::State state = sched_.GetState();
  PutSchedStateCore(out, state);
  PutSchedStateIncremental(out, state);
  out.PutU64(submits_);
  out.PutU64(cancels_);
  out.PutU64(reports_);
  out.PutU64(rejected_reports_);
  out.PutU64(rounds_);
  return out.str();
}

std::unique_ptr<TenantDomain> TenantDomain::FromSnapshot(const std::string& payload,
                                                         std::string* error) {
  BinReader in(payload);
  const uint32_t version = in.GetU32();
  if (!in.ok() || version != kTenantSnapshotVersion) {
    if (error) *error = "unsupported tenant snapshot version";
    return nullptr;
  }
  TenantSetup setup;
  setup.tenant_id = in.GetU64();
  if (!GetTenantSetup(in, &setup)) {
    if (error) *error = "malformed tenant setup";
    return nullptr;
  }
  auto domain = std::make_unique<TenantDomain>(std::move(setup));
  domain->next_round_ = in.GetU64();
  domain->has_last_ = in.GetBool();
  if (domain->has_last_ && !GetRoundDecisions(in, &domain->last_)) {
    if (error) *error = "malformed cached round decisions";
    return nullptr;
  }
  const uint64_t num_jobs = in.GetU64();
  if (!in.ok() || num_jobs > kMaxReasonable) {
    if (error) *error = "malformed job table";
    return nullptr;
  }
  for (uint64_t i = 0; i < num_jobs && in.ok(); ++i) {
    const uint64_t job_id = in.GetU64();
    domain->jobs_[job_id] = GetSchedJobReport(in);
  }
  PolluxSched::State state;
  GetSchedStateCore(in, &state);
  GetSchedStateIncremental(in, &state);
  domain->submits_ = in.GetU64();
  domain->cancels_ = in.GetU64();
  domain->reports_ = in.GetU64();
  domain->rejected_reports_ = in.GetU64();
  domain->rounds_ = in.GetU64();
  if (!in.ok() || !in.AtEnd()) {
    if (error) *error = "malformed tenant snapshot";
    return nullptr;
  }
  domain->sched_.SetState(state);
  return domain;
}

bool TenantDomain::SaveCheckpoint(const std::string& dir, int keep, std::string* error) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error) *error = "cannot create checkpoint dir " + dir + ": " + ec.message();
    return false;
  }
  SnapshotMeta meta;
  // Rounds stand in for sim time: lexicographic file order == round order.
  meta.sim_time = static_cast<double>(next_round_);
  meta.engine = "schedd";
  meta.policy = "pollux";
  meta.seed = setup_.sched.ga.seed;
  meta.jobs_submitted = submits_;
  meta.jobs_finished = cancels_;
  meta.events = rounds_;
  std::map<uint32_t, std::string> sections;
  sections[kTagService] = EncodeSnapshot();
  const std::string path = dir + "/" + SnapshotFileName(meta.sim_time);
  if (!WriteSnapshotFile(path, sections, meta, error)) return false;
  // Bound disk use: keep the newest `keep` snapshots (plus sidecars). The
  // newest file was just written and is never pruned.
  if (keep > 0) {
    std::vector<std::string> files = ListSnapshotFiles(dir);  // oldest first
    while (files.size() > static_cast<size_t>(keep)) {
      std::filesystem::remove(files.front(), ec);
      std::filesystem::remove(files.front() + ".json", ec);
      files.erase(files.begin());
    }
  }
  return true;
}

std::unique_ptr<TenantDomain> TenantDomain::RestoreNewest(const std::string& dir,
                                                          std::string* error) {
  // Newest first, falling back past any file that fails at either layer:
  // container validation (torn write, bad CRC) or tenant payload decode.
  std::vector<std::string> files = ListSnapshotFiles(dir);
  std::string last_error = "no snapshot files in " + dir;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    std::map<uint32_t, std::string> sections;
    if (!ReadSnapshotFile(*it, &sections, &last_error)) continue;
    auto section = sections.find(kTagService);
    if (section == sections.end()) {
      last_error = *it + ": no tenant section";
      continue;
    }
    auto domain = FromSnapshot(section->second, &last_error);
    if (domain) return domain;
  }
  if (error) *error = last_error;
  return nullptr;
}

}  // namespace service
}  // namespace pollux
