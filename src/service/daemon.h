// pollux_schedd: the scheduler-as-a-service daemon (DESIGN.md §15).
//
// One I/O thread multiplexes a Unix-domain listening socket and every client
// connection with poll(); `shards` worker threads own the tenant domains
// (tenant_id % shards), so a TenantDomain is only ever touched by one thread
// and needs no locks. The I/O thread parses frames, answers connection-level
// messages (hello/ping/stats) inline, and routes tenant-scoped requests to
// the owning shard through a bounded per-tenant queue.
//
// Robustness properties (each has a dedicated test):
//  * Overload shedding: a tenant whose queue is at capacity gets an immediate
//    retryable NACK (queue_full) instead of unbounded buffering; sheds are
//    counted. A connection whose outbound buffer exceeds its cap (a consumer
//    that stopped reading) is closed rather than ballooning daemon memory.
//  * Hostile input: framing failures (bad magic, CRC flip, oversized) draw a
//    distinct typed error and close only that connection; malformed payloads
//    in valid frames draw kErrMalformedPayload and the connection survives.
//    The daemon process never crashes on bad bytes.
//  * Graceful degradation: per-tenant round budgets ride on PolluxSched's
//    round_time_budget machinery — an overrunning round freezes warm
//    allocations instead of blocking the shard (kDecisionDegraded flag).
//  * Crash tolerance: executed rounds checkpoint into
//    <checkpoint_dir>/tenant-<id>/ through the atomic v3 snapshot path;
//    Start() warm-restores every tenant directory it finds. RequestDrain()
//    (the SIGTERM path) NACKs new work, finishes queued requests, saves a
//    final checkpoint per tenant, and stops.
//
// Ordering contract: responses on one connection preserve request order per
// tenant (a shard's queue is FIFO) but may interleave across tenants. The
// bundled client is strictly request-response, so this only matters for
// custom pipelined clients.

#ifndef POLLUX_SERVICE_DAEMON_H_
#define POLLUX_SERVICE_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/tenant.h"
#include "service/wire.h"

namespace pollux {
namespace service {

struct ScheddOptions {
  // Unix-domain socket path; an existing socket file is replaced.
  std::string socket_path;
  // Tenant worker threads. Tenants map to shards by tenant_id % shards.
  int shards = 2;
  // Pending requests per tenant before the daemon sheds with NACK queue_full.
  size_t ingest_queue_cap = 256;
  // Outbound bytes buffered per connection before a non-reading client is
  // disconnected.
  size_t outbox_cap_bytes = size_t{8} << 20;
  // Largest accepted frame payload.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Checkpointing: empty dir disables. Every `checkpoint_every_rounds`-th
  // executed round per tenant writes a snapshot; `checkpoint_keep` newest
  // snapshots are retained per tenant.
  std::string checkpoint_dir;
  int checkpoint_every_rounds = 1;
  int checkpoint_keep = 2;
};

// Monotone daemon-wide accounting, exported via kMsgStats and Stats().
struct ScheddStats {
  uint64_t frames = 0;          // well-formed frames dispatched
  uint64_t bad_frames = 0;      // framing failures (magic/CRC/oversized)
  uint64_t malformed = 0;       // valid frames with undecodable payloads
  uint64_t sheds = 0;           // requests NACKed for a full tenant queue
  uint64_t drain_nacks = 0;     // requests NACKed while draining
  uint64_t errors = 0;          // kMsgError responses sent
  uint64_t conns_opened = 0;
  uint64_t conns_closed = 0;
  uint64_t slow_closed = 0;     // connections closed for an over-cap outbox
  uint64_t tenants = 0;         // live tenant domains
  uint64_t jobs = 0;            // live jobs across all tenants
  uint64_t rounds = 0;          // executed (non-cached) scheduling rounds
  uint64_t degraded_rounds = 0; // executed rounds with the degraded flag
  uint64_t checkpoints = 0;     // snapshot files written
  uint64_t restored = 0;        // tenants warm-restored at startup
};

class ScheddDaemon {
 public:
  explicit ScheddDaemon(ScheddOptions options);
  ~ScheddDaemon();

  ScheddDaemon(const ScheddDaemon&) = delete;
  ScheddDaemon& operator=(const ScheddDaemon&) = delete;

  // Binds the socket, warm-restores checkpointed tenants, spawns the I/O
  // thread and shard workers. False (with *error) on socket/restore failure.
  bool Start(std::string* error);

  // Graceful shutdown (the SIGTERM path): new tenant work gets NACK
  // draining, queued requests finish, every tenant saves a final checkpoint,
  // then all threads stop. Returns immediately; Wait() observes completion.
  void RequestDrain();

  // Immediate shutdown for tests: queued requests are dropped, no final
  // checkpoints.
  void Stop();

  // Blocks until all daemon threads have exited (after RequestDrain or Stop).
  void Wait();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  ScheddStats Stats() const;

 private:
  struct Conn;
  struct Request;
  struct Shard;

  void IoLoop();
  void ShardLoop(int shard_index);
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  // Decodes and dispatches every complete frame in conn->inbuf. Returns
  // false when the connection must close (framing failure).
  bool DrainInbuf(const std::shared_ptr<Conn>& conn);
  void DispatchFrame(const std::shared_ptr<Conn>& conn, Frame frame);
  void ProcessRequest(Shard& shard, Request& request);
  void SendFrame(const std::shared_ptr<Conn>& conn, uint32_t type,
                 const std::string& payload);
  void SendError(const std::shared_ptr<Conn>& conn, ErrCode code,
                 const std::string& detail);
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(uint64_t conn_id);
  void WakeIo();
  bool RestoreTenants(std::string* error);
  void CheckpointTenant(const TenantDomain& tenant);
  std::string TenantDir(uint64_t tenant_id) const;

  ScheddOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};

  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};

  std::thread io_thread_;
  std::vector<std::thread> shard_threads_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex conns_mutex_;
  std::map<uint64_t, std::shared_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;

  // Stats: plain atomics so the I/O thread can answer kMsgStats inline.
  std::atomic<uint64_t> frames_{0}, bad_frames_{0}, malformed_{0}, sheds_{0},
      drain_nacks_{0}, errors_{0}, conns_opened_{0}, conns_closed_{0},
      slow_closed_{0}, tenants_{0}, jobs_{0}, rounds_{0}, degraded_rounds_{0},
      checkpoints_{0}, restored_{0};
};

}  // namespace service
}  // namespace pollux

#endif  // POLLUX_SERVICE_DAEMON_H_
