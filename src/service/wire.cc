#include "service/wire.h"

#include <cstring>

namespace pollux {
namespace service {
namespace {

uint32_t ReadU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
         static_cast<uint32_t>(b[2]) << 16 | static_cast<uint32_t>(b[3]) << 24;
}

uint64_t ReadU64(const char* p) {
  return static_cast<uint64_t>(ReadU32(p)) | static_cast<uint64_t>(ReadU32(p + 4)) << 32;
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case kMsgHello: return "hello";
    case kMsgCreateTenant: return "create_tenant";
    case kMsgSubmitJob: return "submit_job";
    case kMsgCancelJob: return "cancel_job";
    case kMsgReport: return "report";
    case kMsgRunRound: return "run_round";
    case kMsgStats: return "stats";
    case kMsgPing: return "ping";
    case kMsgAck: return "ack";
    case kMsgNack: return "nack";
    case kMsgError: return "error";
    case kMsgDecisions: return "decisions";
    case kMsgStatsReply: return "stats_reply";
    case kMsgPong: return "pong";
    case kMsgHelloOk: return "hello_ok";
  }
  return "unknown";
}

const char* ErrCodeName(ErrCode code) {
  switch (code) {
    case kErrMalformedPayload: return "malformed_payload";
    case kErrUnknownType: return "unknown_type";
    case kErrUnknownTenant: return "unknown_tenant";
    case kErrTenantMismatch: return "tenant_mismatch";
    case kErrBadRound: return "bad_round";
    case kErrUnknownJob: return "unknown_job";
    case kErrVersionMismatch: return "version_mismatch";
    case kErrBadMagic: return "bad_magic";
    case kErrBadCrc: return "bad_crc";
    case kErrOversized: return "oversized";
  }
  return "unknown";
}

const char* NackReasonName(NackReason reason) {
  switch (reason) {
    case kNackQueueFull: return "queue_full";
    case kNackDraining: return "draining";
  }
  return "unknown";
}

const char* FrameStatusName(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kNeedMore: return "need_more";
    case FrameStatus::kBadMagic: return "bad_magic";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kBadCrc: return "bad_crc";
  }
  return "unknown";
}

std::string EncodeFrame(uint32_t type, const std::string& payload) {
  BinWriter out;
  out.PutU32(kFrameMagic);
  out.PutU32(type);
  out.PutU64(payload.size());
  std::string frame = out.str();
  frame += payload;
  // CRC covers everything after the magic: type, length, payload. The magic
  // is excluded so a deliberate CRC flip in tests cannot be "fixed" by also
  // flipping magic bytes into a colliding value.
  const uint32_t crc = Crc32(frame.data() + 4, frame.size() - 4);
  BinWriter trailer;
  trailer.PutU32(crc);
  frame += trailer.str();
  return frame;
}

FrameStatus DecodeFrame(const std::string& buffer, size_t max_payload, Frame* frame,
                        size_t* consumed) {
  *consumed = 0;
  // Reject bad magic as soon as the first four bytes are in: a garbage
  // stream must not be able to stall a connection by never completing a
  // "frame" whose declared length is nonsense.
  if (buffer.size() >= 4 && ReadU32(buffer.data()) != kFrameMagic) {
    return FrameStatus::kBadMagic;
  }
  if (buffer.size() < kFrameHeaderSize) {
    return FrameStatus::kNeedMore;
  }
  const uint64_t length = ReadU64(buffer.data() + 8);
  if (length > max_payload) {
    return FrameStatus::kOversized;
  }
  const size_t total = kFrameHeaderSize + static_cast<size_t>(length) + kFrameTrailerSize;
  if (buffer.size() < total) {
    return FrameStatus::kNeedMore;
  }
  const uint32_t declared_crc = ReadU32(buffer.data() + total - kFrameTrailerSize);
  const uint32_t actual_crc = Crc32(buffer.data() + 4, total - kFrameTrailerSize - 4);
  if (declared_crc != actual_crc) {
    return FrameStatus::kBadCrc;
  }
  frame->type = ReadU32(buffer.data() + 4);
  frame->payload.assign(buffer.data() + kFrameHeaderSize, static_cast<size_t>(length));
  *consumed = total;
  return FrameStatus::kOk;
}

std::string EncodeError(ErrCode code, const std::string& detail) {
  BinWriter out;
  out.PutU32(code);
  out.PutString(detail);
  return out.str();
}

std::string EncodeNack(NackReason reason, const std::string& detail) {
  BinWriter out;
  out.PutU32(reason);
  out.PutString(detail);
  return out.str();
}

bool DecodeErrorPayload(const std::string& payload, uint32_t* code, std::string* detail) {
  BinReader in(payload);
  *code = in.GetU32();
  *detail = in.GetString();
  return in.ok();
}

}  // namespace service
}  // namespace pollux
