// Wire protocol for pollux_schedd (DESIGN.md §15).
//
// Every message travels in one frame:
//
//   u32 magic  "PLXD" (little-endian 0x444C5850)
//   u32 type   (MsgType)
//   u64 payload length
//   payload bytes (BinWriter-encoded, see the per-message layouts below)
//   u32 CRC-32 (IEEE) over type + length + payload
//
// The framing layer is deliberately hostile-input-first: a decoder fed
// truncated, bad-magic, oversized, or bit-flipped bytes reports a *distinct*
// typed error (FrameStatus) and never reads past the buffer. Magic/CRC/length
// failures mean the byte stream can no longer be trusted to be frame-aligned,
// so the daemon answers with a typed kMsgError and closes the connection;
// payload-level decode failures (valid frame, malformed contents) are
// per-request errors and the connection survives.
//
// All integers little-endian via sim/checkpoint's BinWriter/BinReader, so the
// service shares one binary dialect with the snapshot format.

#ifndef POLLUX_SERVICE_WIRE_H_
#define POLLUX_SERVICE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/checkpoint.h"

namespace pollux {
namespace service {

inline constexpr uint32_t kFrameMagic = 0x444C5850u;  // "PLXD"
inline constexpr uint32_t kProtocolVersion = 1;
// Frame header bytes before the payload (magic + type + length).
inline constexpr size_t kFrameHeaderSize = 4 + 4 + 8;
inline constexpr size_t kFrameTrailerSize = 4;  // CRC-32.
// Default ceiling on one frame's payload. A report batch for thousands of
// agents fits comfortably; anything larger is a hostile or broken client.
inline constexpr size_t kDefaultMaxFrameBytes = size_t{4} << 20;

enum MsgType : uint32_t {
  // Requests.
  kMsgHello = 1,         // u32 protocol version
  kMsgCreateTenant = 2,  // u64 tenant, TenantSetup (see tenant.h codec)
  kMsgSubmitJob = 3,     // u64 tenant, AgentReport, f64 gpu_time
  kMsgCancelJob = 4,     // u64 tenant, u64 job_id
  kMsgReport = 5,        // u64 tenant, u64 n, n x SchedJobReport
  kMsgRunRound = 6,      // u64 tenant, u64 round index
  kMsgStats = 7,         // u64 tenant (0 = daemon-wide)
  kMsgPing = 8,          // empty
  // Responses.
  kMsgAck = 100,         // u64 value (context-dependent, e.g. accepted count)
  kMsgNack = 101,        // u32 NackReason, string detail — retryable
  kMsgError = 102,       // u32 ErrCode, string detail — not retryable
  kMsgDecisions = 103,   // u64 round, u32 flags, f64 utility, u64 n, n x (u64 job, IntVec row)
  kMsgStatsReply = 104,  // u64 n, n x (string key, u64 value)
  kMsgPong = 105,        // empty
  kMsgHelloOk = 106,     // u32 protocol version
};

// kMsgDecisions flags.
inline constexpr uint32_t kDecisionDegraded = 1u << 0;  // degraded or fallback round
inline constexpr uint32_t kDecisionCached = 1u << 1;    // replay of an executed round

// Retryable push-back: the client backs off and resends the same request.
enum NackReason : uint32_t {
  kNackQueueFull = 1,  // tenant ingest queue at capacity (overload shed)
  kNackDraining = 2,   // daemon is draining for shutdown
};

// Non-retryable request failures. The kErrBad* family mirrors FrameStatus:
// it is sent (best-effort) before the daemon closes a connection whose byte
// stream desynchronized.
enum ErrCode : uint32_t {
  kErrMalformedPayload = 1,
  kErrUnknownType = 2,
  kErrUnknownTenant = 3,
  kErrTenantMismatch = 4,  // CreateTenant with a different shape than exists
  kErrBadRound = 5,        // RunRound index not next and not last-executed
  kErrUnknownJob = 6,
  kErrVersionMismatch = 7,
  kErrBadMagic = 8,
  kErrBadCrc = 9,
  kErrOversized = 10,
};

const char* MsgTypeName(MsgType type);
const char* ErrCodeName(ErrCode code);
const char* NackReasonName(NackReason reason);

// One decoded frame. `payload` is a copy (the connection buffer it came from
// is consumed immediately after decoding).
struct Frame {
  uint32_t type = 0;
  std::string payload;
};

enum class FrameStatus {
  kOk = 0,
  kNeedMore,    // prefix of a valid frame; wait for more bytes
  kBadMagic,    // first four bytes are not "PLXD"
  kOversized,   // declared payload length exceeds the decoder's limit
  kBadCrc,      // framing intact but the CRC check failed (bit flip)
};

const char* FrameStatusName(FrameStatus status);

// Serializes one frame (header + payload + CRC).
std::string EncodeFrame(uint32_t type, const std::string& payload);

// Attempts to decode one frame from the front of `buffer`. On kOk fills
// `frame` and sets `consumed` to the frame's full size; on kNeedMore both
// outputs are untouched; on any error `consumed` is 0 and the caller must
// treat the stream as unsynchronized (there is no reliable resync point in a
// length-prefixed protocol).
FrameStatus DecodeFrame(const std::string& buffer, size_t max_payload, Frame* frame,
                        size_t* consumed);

// Payload helpers for the fixed-shape messages.
std::string EncodeError(ErrCode code, const std::string& detail);
std::string EncodeNack(NackReason reason, const std::string& detail);
bool DecodeErrorPayload(const std::string& payload, uint32_t* code, std::string* detail);

}  // namespace service
}  // namespace pollux

#endif  // POLLUX_SERVICE_WIRE_H_
