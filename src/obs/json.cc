#include "obs/json.h"

#include <cctype>

namespace pollux {
namespace obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWhitespace();
    if (!ParseValue()) {
      Fail("invalid value");
    } else {
      SkipWhitespace();
      if (!failed_ && pos_ != text_.size()) {
        Fail("trailing characters after JSON value");
      }
    }
    if (failed_ && error != nullptr) {
      *error = "offset " + std::to_string(error_pos_) + ": " + error_message_;
    }
    return !failed_;
  }

 private:
  void Fail(const char* message) {
    if (!failed_) {
      failed_ = true;
      error_pos_ = pos_;
      error_message_ = message;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                        text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (Peek() != c) {
      return false;
    }
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  bool ParseValue() {
    if (failed_ || depth_ > kMaxDepth) {
      Fail("nesting too deep");
      return false;
    }
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ConsumeLiteral("true");
      case 'f':
        return ConsumeLiteral("false");
      case 'n':
        return ConsumeLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject() {
    ++depth_;
    Consume('{');
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (!ParseString()) {
        Fail("expected object key");
        return false;
      }
      SkipWhitespace();
      if (!Consume(':')) {
        Fail("expected ':' in object");
        return false;
      }
      SkipWhitespace();
      if (!ParseValue()) {
        Fail("invalid object value");
        return false;
      }
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        --depth_;
        return true;
      }
      Fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool ParseArray() {
    ++depth_;
    Consume('[');
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (!ParseValue()) {
        Fail("invalid array element");
        return false;
      }
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        --depth_;
        return true;
      }
      Fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool ParseString() {
    if (!Consume('"')) {
      return false;
    }
    while (!AtEnd()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
        return false;
      }
      if (c == '\\') {
        if (AtEnd()) {
          break;
        }
        const char escape = text_[pos_++];
        if (escape == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() || std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              Fail("bad \\u escape");
              return false;
            }
            ++pos_;
          }
        } else if (escape != '"' && escape != '\\' && escape != '/' && escape != 'b' &&
                   escape != 'f' && escape != 'n' && escape != 'r' && escape != 't') {
          Fail("bad escape character");
          return false;
        }
      }
    }
    Fail("unterminated string");
    return false;
  }

  bool ParseNumber() {
    const size_t start = pos_;
    Consume('-');
    if (Peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    } else {
      return false;
    }
    if (Consume('.')) {
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      if (std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool failed_ = false;
  size_t error_pos_ = 0;
  std::string error_message_;
};

}  // namespace

bool JsonParseOk(std::string_view text, std::string* error) {
  return Parser(text).Run(error);
}

}  // namespace obs
}  // namespace pollux
