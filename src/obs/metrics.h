// Process-global metrics registry: named counters, gauges, and bounded
// log-bucketed histograms with quantile export.
//
// Design goals, in order:
//
//  1. Zero cost when disabled. The registry starts disabled; every handle
//     checks one relaxed atomic bool before touching anything, so a
//     zero-knob run performs no clock reads, no stores, and no allocation
//     beyond the handles themselves. Simulated results are observe-only
//     either way — instruments never feed back into scheduling — so
//     enabling metrics cannot change any simulation output (asserted by
//     obs_trace_test's golden-identity test).
//
//  2. Lock-free hot path. Handles are resolved once (registry mutex +
//     map lookup) and cached by the instrumented code, typically in a
//     function-local static; after that, Counter::Add and
//     Histogram::Record are a relaxed-atomic fetch_add, safe from any
//     thread (ThreadPool workers included).
//
//  3. Bounded memory. Histograms use a fixed array of log-spaced buckets
//     (8 per octave over ~2^-30 .. 2^34, i.e. nanoseconds to hours when
//     recording seconds) instead of storing samples, so arbitrarily long
//     simulations stay at a few KiB per histogram. Quantiles are read from
//     the bucket boundaries, accurate to ~9% — plenty for regression
//     gating.
//
// Export is a single JSON object (see WriteJson) diffed by
// tools/check_bench_regression.py in CI.

#ifndef POLLUX_OBS_METRICS_H_
#define POLLUX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace pollux {
namespace obs {

class MetricsRegistry;

// Monotone event count. Add() is a relaxed fetch_add when the owning
// registry is enabled, a single relaxed load otherwise.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

// Last-written value (e.g. cache hit rate after a round, queue depth).
class Gauge {
 public:
  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

// Fixed-size log-bucketed histogram: count/sum/min/max plus quantiles read
// from 8-per-octave buckets. Record() is wait-free (one fetch_add per
// atomic; min/max use a bounded CAS loop that only runs on new extremes).
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 8;
  static constexpr int kMinLog2 = -30;  // ~9.3e-10
  static constexpr int kMaxLog2 = 34;   // ~1.7e10
  static constexpr size_t kNumBuckets =
      static_cast<size_t>((kMaxLog2 - kMinLog2) * kSubBucketsPerOctave);

  void Record(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty.
  double max() const;  // 0 when empty.
  double mean() const;
  // q in [0, 1]. Returns the geometric midpoint of the bucket holding the
  // q-th sample, clamped into [min, max]; 0 when empty.
  double Quantile(double q) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled);
  void Reset();
  static size_t BucketIndex(double v);
  static double BucketMidpoint(size_t index);

  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
};

// Name -> instrument map. Handles are created on first Get* and live for
// the process lifetime (the global registry is intentionally leaked so
// instruments stay valid during static destruction, e.g. thread-pool
// teardown).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Returns the instrument registered under `name`, creating it on first
  // use. Pointers are stable for the registry's lifetime; a name denotes
  // one instrument kind only (requesting it as another kind aborts).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Zeroes every instrument in place (handles stay valid). For tests.
  void Reset();

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  // min, max, mean, p50, p95, p99}}}
  void WriteJson(std::ostream& out) const;
  std::string ToJson() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace pollux

#endif  // POLLUX_OBS_METRICS_H_
