#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <vector>

namespace pollux {
namespace obs {
namespace {

// Atomic min/max over doubles: bounded CAS loop that only retries while the
// stored value is still beaten by `v`.
void AtomicMin(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current &&
         !target.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current &&
         !target.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

// Doubles must serialize to valid JSON: no NaN/Inf tokens.
void AppendJsonDouble(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "0";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  out << buffer;
}

}  // namespace

Histogram::Histogram(const std::atomic<bool>* enabled)
    : enabled_(enabled),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

size_t Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) {
    return 0;  // Non-positive and NaN samples land in the lowest bucket.
  }
  const double position = kSubBucketsPerOctave * (std::log2(v) - kMinLog2);
  if (position <= 0.0) {
    return 0;
  }
  const size_t index = static_cast<size_t>(position);
  return index < kNumBuckets ? index : kNumBuckets - 1;
}

double Histogram::BucketMidpoint(size_t index) {
  const double log2_mid =
      kMinLog2 + (static_cast<double>(index) + 0.5) / kSubBucketsPerOctave;
  return std::exp2(log2_mid);
}

void Histogram::Record(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) {
    return;
  }
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::Quantile(double q) const {
  // Snapshot the buckets so the walk is consistent even under concurrent
  // Record()s (counts may lag count_ slightly; the snapshot total is
  // authoritative for the walk).
  std::vector<uint64_t> snapshot(kNumBuckets);
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  if (total == 0) {
    return 0.0;
  }
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t seen = 0;
  size_t index = kNumBuckets - 1;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += snapshot[i];
    if (seen >= rank) {
      index = i;
      break;
    }
  }
  double value = BucketMidpoint(index);
  // The bucket midpoint can fall slightly outside the observed range; clamp
  // so quantiles are always within [min, max].
  const double lo = min();
  const double hi = max();
  if (value < lo) {
    value = lo;
  }
  if (value > hi) {
    value = hi;
  }
  return value;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments resolved into function-local statics must
  // outlive every other static destructor (e.g. thread pools flushing tasks
  // during teardown).
  static MetricsRegistry* const global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    std::fprintf(stderr, "metric \"%s\" already registered as a different kind\n", name.c_str());
    std::abort();
  }
  auto& slot = counters_[name];
  if (!slot) {
    slot.reset(new Counter(&enabled_));
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    std::fprintf(stderr, "metric \"%s\" already registered as a different kind\n", name.c_str());
    std::abort();
  }
  auto& slot = gauges_[name];
  if (!slot) {
    slot.reset(new Gauge(&enabled_));
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    std::fprintf(stderr, "metric \"%s\" already registered as a different kind\n", name.c_str());
    std::abort();
  }
  auto& slot = histograms_[name];
  if (!slot) {
    slot.reset(new Histogram(&enabled_));
  }
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << counter->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
    AppendJsonDouble(out, gauge->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": " << histogram->count()
        << ", \"sum\": ";
    AppendJsonDouble(out, histogram->sum());
    out << ", \"min\": ";
    AppendJsonDouble(out, histogram->min());
    out << ", \"max\": ";
    AppendJsonDouble(out, histogram->max());
    out << ", \"mean\": ";
    AppendJsonDouble(out, histogram->mean());
    out << ", \"p50\": ";
    AppendJsonDouble(out, histogram->Quantile(0.50));
    out << ", \"p95\": ";
    AppendJsonDouble(out, histogram->Quantile(0.95));
    out << ", \"p99\": ";
    AppendJsonDouble(out, histogram->Quantile(0.99));
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream out;
  WriteJson(out);
  return out.str();
}

}  // namespace obs
}  // namespace pollux
