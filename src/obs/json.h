// Minimal JSON well-formedness checker (no external dependency). Used by
// the observability tests to assert that exported metrics/trace files are
// parseable, and available to any tool that wants a cheap sanity check
// before shipping a file to chrome://tracing / Perfetto.

#ifndef POLLUX_OBS_JSON_H_
#define POLLUX_OBS_JSON_H_

#include <string>
#include <string_view>

namespace pollux {
namespace obs {

// True iff `text` is exactly one valid JSON value (RFC 8259 grammar:
// objects, arrays, strings with escapes, numbers, true/false/null) with
// nothing but whitespace after it. On failure, fills `error` (if non-null)
// with a byte offset + message.
bool JsonParseOk(std::string_view text, std::string* error = nullptr);

}  // namespace obs
}  // namespace pollux

#endif  // POLLUX_OBS_JSON_H_
