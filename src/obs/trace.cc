#include "obs/trace.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace pollux {
namespace obs {
namespace {

void AppendEscaped(std::ostream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
}

void AppendJsonDouble(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "0";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  out << buffer;
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  // Leaked for the same static-destruction-order reason as MetricsRegistry.
  static TraceRecorder* const global = new TraceRecorder();
  return *global;
}

double TraceRecorder::NowUs() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint64_t CurrentThreadTrack() {
  static std::atomic<uint64_t> next_track{1};
  thread_local uint64_t track = next_track.fetch_add(1, std::memory_order_relaxed);
  return track;
}

void TraceRecorder::Push(Event event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::EmitComplete(std::string name, double start_us, double dur_us) {
  if (!enabled()) {
    return;
  }
  Event event;
  event.name = std::move(name);
  event.phase = 'X';
  event.pid = kWallPid;
  event.tid = CurrentThreadTrack();
  event.ts_us = start_us;
  event.dur_us = dur_us;
  Push(std::move(event));
}

void TraceRecorder::EmitSimSpan(std::string name, uint64_t track, double start_s,
                                double duration_s) {
  if (!enabled()) {
    return;
  }
  Event event;
  event.name = std::move(name);
  event.phase = 'X';
  event.pid = kSimPid;
  event.tid = track;
  event.ts_us = start_s * 1e6;
  event.dur_us = duration_s * 1e6;
  Push(std::move(event));
}

void TraceRecorder::EmitSimInstant(std::string name, uint64_t track, double time_s) {
  if (!enabled()) {
    return;
  }
  Event event;
  event.name = std::move(name);
  event.phase = 'i';
  event.pid = kSimPid;
  event.tid = track;
  event.ts_us = time_s * 1e6;
  Push(std::move(event));
}

void TraceRecorder::SetTrackName(uint64_t pid, uint64_t tid, std::string name) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  track_names_[{pid, tid}] = std::move(name);
}

void TraceRecorder::SetMaxEvents(size_t max_events) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_events_ = max_events;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  track_names_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::vector<TraceRecorder::Event> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::WriteJson(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"traceEvents\": [\n";
  bool first = true;
  const auto separator = [&] {
    if (!first) {
      out << ",\n";
    }
    first = false;
  };
  // Process + track metadata so Perfetto shows meaningful names.
  separator();
  out << R"j({"name": "process_name", "ph": "M", "pid": 1, "tid": 0, )j"
      << R"j("args": {"name": "pollux (wall clock)"}})j";
  separator();
  out << R"j({"name": "process_name", "ph": "M", "pid": 2, "tid": 0, )j"
      << R"j("args": {"name": "cluster (simulated time)"}})j";
  for (const auto& [track, name] : track_names_) {
    separator();
    out << R"j({"name": "thread_name", "ph": "M", "pid": )j" << track.first << ", \"tid\": "
        << track.second << ", \"args\": {\"name\": \"";
    AppendEscaped(out, name);
    out << "\"}}";
  }
  for (const auto& event : events_) {
    separator();
    out << "{\"name\": \"";
    AppendEscaped(out, event.name);
    out << "\", \"cat\": \"pollux\", \"ph\": \"" << event.phase << "\", \"pid\": " << event.pid
        << ", \"tid\": " << event.tid << ", \"ts\": ";
    AppendJsonDouble(out, event.ts_us);
    if (event.phase == 'X') {
      out << ", \"dur\": ";
      AppendJsonDouble(out, event.dur_us);
    } else if (event.phase == 'i') {
      out << ", \"s\": \"t\"";
    }
    out << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace obs
}  // namespace pollux
