// Trace-event recorder emitting Chrome chrome://tracing / Perfetto
// compatible JSON ("trace event format", complete/instant/metadata events).
//
// Two clock domains share one trace, separated by pid:
//
//   pid 1 "pollux (wall clock)" — real time spent inside the scheduler
//     implementation (GA rounds, model fits, thread-pool tasks). Spans are
//     recorded with TRACE_SCOPE("name") on whichever thread runs them; each
//     thread gets its own track (tid).
//
//   pid 2 "cluster (simulated time)" — simulated time, 1 simulated second
//     rendered as 1 second. The simulator emits one span per job lifetime
//     (per-job tracks) plus instant events for faults/evictions, so a
//     Perfetto timeline shows the whole cluster schedule at a glance.
//
// Disabled (the default), TRACE_SCOPE compiles to one relaxed atomic load —
// no clock reads, no allocation — so zero-knob runs are unaffected. The
// event buffer is bounded (dropped events are counted), keeping memory
// finite on arbitrarily long runs.

#ifndef POLLUX_OBS_TRACE_H_
#define POLLUX_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace pollux {
namespace obs {

class TraceRecorder {
 public:
  static constexpr uint64_t kWallPid = 1;
  static constexpr uint64_t kSimPid = 2;

  struct Event {
    std::string name;
    char phase = 'X';  // 'X' complete, 'i' instant.
    uint64_t pid = kWallPid;
    uint64_t tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;  // Complete events only.
  };

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& Global();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds of wall clock since the recorder was constructed.
  double NowUs() const;

  // Wall-clock complete event on the calling thread's track.
  void EmitComplete(std::string name, double start_us, double dur_us);

  // Simulated-time span/instant on an explicit track of the sim process
  // (track = job id or node index; times in simulated seconds).
  void EmitSimSpan(std::string name, uint64_t track, double start_s, double duration_s);
  void EmitSimInstant(std::string name, uint64_t track, double time_s);

  // Names a (pid, tid) track in the exported metadata.
  void SetTrackName(uint64_t pid, uint64_t tid, std::string name);

  // Bounded buffer: events beyond the cap are dropped (and counted).
  void SetMaxEvents(size_t max_events);
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Drops all buffered events and track names; keeps the enabled state.
  void Clear();

  std::vector<Event> Snapshot() const;

  // {"traceEvents": [...], "displayTimeUnit": "ms"} — loadable by
  // chrome://tracing and ui.perfetto.dev.
  void WriteJson(std::ostream& out) const;

 private:
  void Push(Event event);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::map<std::pair<uint64_t, uint64_t>, std::string> track_names_;
  size_t max_events_ = 1 << 20;
  std::atomic<uint64_t> dropped_{0};
};

// Stable per-thread track id (assigned 1, 2, ... in first-use order).
uint64_t CurrentThreadTrack();

// RAII wall-clock span: records steady_clock at construction and emits a
// complete event at destruction. All work is skipped while tracing is
// disabled.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    TraceRecorder& recorder = TraceRecorder::Global();
    if (recorder.enabled()) {
      name_ = name;
      start_us_ = recorder.NowUs();
      active_ = true;
    }
  }
  ~TraceScope() {
    if (active_) {
      TraceRecorder& recorder = TraceRecorder::Global();
      recorder.EmitComplete(name_, start_us_, recorder.NowUs() - start_us_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  double start_us_ = 0.0;
  bool active_ = false;
};

#define POLLUX_TRACE_CONCAT_INNER(a, b) a##b
#define POLLUX_TRACE_CONCAT(a, b) POLLUX_TRACE_CONCAT_INNER(a, b)
#define TRACE_SCOPE(name) \
  ::pollux::obs::TraceScope POLLUX_TRACE_CONCAT(pollux_trace_scope_, __LINE__)(name)

}  // namespace obs
}  // namespace pollux

#endif  // POLLUX_OBS_TRACE_H_
