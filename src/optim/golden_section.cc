#include "optim/golden_section.h"

#include <algorithm>
#include <cmath>

namespace pollux {
namespace {

// 1/phi and 1/phi^2 for the golden-section interior points.
constexpr double kInvPhi = 0.6180339887498949;
constexpr double kInvPhi2 = 0.3819660112501051;

}  // namespace

GoldenSectionResult GoldenSectionMaximize(const std::function<double(double)>& f, double lo,
                                          double hi, double tolerance, int max_evaluations) {
  GoldenSectionResult result;
  if (hi < lo) {
    std::swap(lo, hi);
  }
  double a = lo;
  double b = hi;
  double c = a + kInvPhi2 * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c);
  double fd = f(d);
  result.evaluations = 2;
  while (b - a > tolerance && result.evaluations < max_evaluations) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = a + kInvPhi2 * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
    ++result.evaluations;
  }
  if (fc > fd) {
    result.x = c;
    result.value = fc;
  } else {
    result.x = d;
    result.value = fd;
  }
  return result;
}

IntSearchResult GoldenSectionMaximizeInt(const std::function<double(long)>& f, long lo, long hi,
                                         int neighborhood) {
  IntSearchResult result;
  if (hi < lo) {
    std::swap(lo, hi);
  }
  if (hi - lo <= 16) {
    // Small range: exhaustive scan is both exact and cheap.
    result.best_x = lo;
    result.value = f(lo);
    result.evaluations = 1;
    for (long x = lo + 1; x <= hi; ++x) {
      const double value = f(x);
      ++result.evaluations;
      if (value > result.value) {
        result.value = value;
        result.best_x = x;
      }
    }
    return result;
  }
  int evaluations = 0;
  auto continuous = GoldenSectionMaximize(
      [&](double x) {
        ++evaluations;
        return f(std::lround(x));
      },
      static_cast<double>(lo), static_cast<double>(hi), 0.5);
  long center = std::lround(continuous.x);
  result.best_x = std::clamp(center, lo, hi);
  result.value = f(result.best_x);
  ++evaluations;
  for (long delta = 1; delta <= neighborhood; ++delta) {
    for (long candidate : {center - delta, center + delta}) {
      if (candidate < lo || candidate > hi) {
        continue;
      }
      const double value = f(candidate);
      ++evaluations;
      if (value > result.value) {
        result.value = value;
        result.best_x = candidate;
      }
    }
  }
  result.evaluations = evaluations;
  return result;
}

}  // namespace pollux
