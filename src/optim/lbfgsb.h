// Bound-constrained limited-memory quasi-Newton minimizer in the style of
// L-BFGS-B [Zhu et al. 1997], which the paper uses to fit the system
// throughput parameters theta_sys by minimizing RMSLE (Sec. 4.1).
//
// This implementation combines:
//   * gradient projection onto the box for active-set identification,
//   * the standard L-BFGS two-loop recursion restricted to free variables,
//   * a projected backtracking (Armijo) line search,
//   * optional central finite-difference gradients when the caller does not
//     provide an analytic gradient,
//   * a multi-start driver for non-convex objectives.
//
// It is not a line-for-line port of the Fortran code, but solves the same
// class of problems (small dense box-constrained smooth minimization) and is
// validated in tests against quadratics, the Rosenbrock function, and
// bound-active solutions.

#ifndef POLLUX_OPTIM_LBFGSB_H_
#define POLLUX_OPTIM_LBFGSB_H_

#include <functional>
#include <vector>

#include "util/rng.h"

namespace pollux {

using Objective = std::function<double(const std::vector<double>&)>;
using Gradient = std::function<std::vector<double>(const std::vector<double>&)>;

struct BoundedProblem {
  Objective objective;
  // Optional analytic gradient; when absent, central finite differences with
  // step `LbfgsbOptions::fd_epsilon` are used.
  Gradient gradient;
  std::vector<double> lower;
  std::vector<double> upper;
};

struct LbfgsbOptions {
  int max_iterations = 200;
  // Convergence when the infinity norm of the projected gradient drops below
  // this threshold.
  double gradient_tolerance = 1e-7;
  // Convergence when the relative objective decrease drops below this.
  double function_tolerance = 1e-12;
  // Number of stored (s, y) curvature pairs.
  int history = 8;
  double fd_epsilon = 1e-6;
  // Armijo sufficient-decrease constant.
  double armijo_c1 = 1e-4;
  int max_line_search_steps = 40;
};

struct LbfgsbResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  int evaluations = 0;
  bool converged = false;
};

// Clamps each coordinate of x into [lower, upper].
std::vector<double> ProjectToBox(std::vector<double> x, const std::vector<double>& lower,
                                 const std::vector<double>& upper);

// Central finite-difference gradient of `f` at `x`, with steps shrunk near the
// box boundary so evaluation points stay feasible.
std::vector<double> FiniteDifferenceGradient(const Objective& f, const std::vector<double>& x,
                                             const std::vector<double>& lower,
                                             const std::vector<double>& upper, double epsilon);

// Minimizes the problem starting from x0 (projected into the box first).
LbfgsbResult MinimizeBounded(const BoundedProblem& problem, const std::vector<double>& x0,
                             const LbfgsbOptions& options = {});

// Runs MinimizeBounded from x0 plus `extra_starts` random interior points and
// returns the best result. Deterministic given `rng`.
LbfgsbResult MinimizeBoundedMultiStart(const BoundedProblem& problem, const std::vector<double>& x0,
                                       int extra_starts, Rng& rng,
                                       const LbfgsbOptions& options = {});

}  // namespace pollux

#endif  // POLLUX_OPTIM_LBFGSB_H_
