// Golden-section search [Kiefer 1953] for maximizing a unimodal function over
// an interval. Pollux uses this to maximize GOODPUT(a, m) over the batch size
// m (PolluxAgent batch-size tuning, and both sides of the SPEEDUP ratio in
// PolluxSched — see paper Sec. 4.1/4.2).

#ifndef POLLUX_OPTIM_GOLDEN_SECTION_H_
#define POLLUX_OPTIM_GOLDEN_SECTION_H_

#include <functional>

namespace pollux {

struct GoldenSectionResult {
  double x = 0.0;
  double value = 0.0;
  int evaluations = 0;
};

// Maximizes `f` on [lo, hi], assumed unimodal. Stops when the bracketing
// interval shrinks below `tolerance` (absolute, in x).
GoldenSectionResult GoldenSectionMaximize(const std::function<double(double)>& f, double lo,
                                          double hi, double tolerance = 1e-4,
                                          int max_evaluations = 200);

// Integer variant: maximizes f over the integers in [lo, hi]. Runs a
// continuous golden-section pass and then polishes by scanning the
// neighborhood of the rounded optimum, so mild non-unimodality introduced by
// rounding cannot lose the maximum. Used for batch-size optimization where m
// is an integer number of examples.
struct IntSearchResult {
  long best_x = 0;
  double value = 0.0;
  int evaluations = 0;
};

IntSearchResult GoldenSectionMaximizeInt(const std::function<double(long)>& f, long lo, long hi,
                                         int neighborhood = 2);

}  // namespace pollux

#endif  // POLLUX_OPTIM_GOLDEN_SECTION_H_
