#include "optim/lbfgsb.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace pollux {
namespace {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += a[i] * b[i];
  }
  return total;
}

double InfNorm(const std::vector<double>& v) {
  double best = 0.0;
  for (double x : v) {
    best = std::max(best, std::fabs(x));
  }
  return best;
}

// A variable is considered pinned to a bound when it sits on the bound and the
// gradient pushes it further out of the box.
std::vector<bool> ActiveSet(const std::vector<double>& x, const std::vector<double>& g,
                            const std::vector<double>& lower, const std::vector<double>& upper) {
  std::vector<bool> active(x.size(), false);
  for (size_t i = 0; i < x.size(); ++i) {
    const double span = std::max(1.0, upper[i] - lower[i]);
    const double edge = 1e-10 * span;
    if ((x[i] <= lower[i] + edge && g[i] > 0.0) || (x[i] >= upper[i] - edge && g[i] < 0.0)) {
      active[i] = true;
    }
  }
  return active;
}

struct CurvaturePair {
  std::vector<double> s;
  std::vector<double> y;
  double rho;  // 1 / (y . s)
};

}  // namespace

std::vector<double> ProjectToBox(std::vector<double> x, const std::vector<double>& lower,
                                 const std::vector<double>& upper) {
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  }
  return x;
}

std::vector<double> FiniteDifferenceGradient(const Objective& f, const std::vector<double>& x,
                                             const std::vector<double>& lower,
                                             const std::vector<double>& upper, double epsilon) {
  std::vector<double> grad(x.size(), 0.0);
  std::vector<double> probe = x;
  for (size_t i = 0; i < x.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(x[i]));
    double h = epsilon * scale;
    // Shrink the step so both probe points stay inside the box; fall back to a
    // one-sided difference when the variable is pinned to a bound.
    const double room_up = upper[i] - x[i];
    const double room_down = x[i] - lower[i];
    if (room_up >= h && room_down >= h) {
      probe[i] = x[i] + h;
      const double f_plus = f(probe);
      probe[i] = x[i] - h;
      const double f_minus = f(probe);
      grad[i] = (f_plus - f_minus) / (2.0 * h);
    } else if (room_up >= room_down) {
      h = std::min(h, room_up);
      if (h <= 0.0) {
        grad[i] = 0.0;
        probe[i] = x[i];
        continue;
      }
      probe[i] = x[i] + h;
      const double f_plus = f(probe);
      grad[i] = (f_plus - f(x)) / h;
    } else {
      h = std::min(h, room_down);
      probe[i] = x[i] - h;
      const double f_minus = f(probe);
      grad[i] = (f(x) - f_minus) / h;
    }
    probe[i] = x[i];
  }
  return grad;
}

LbfgsbResult MinimizeBounded(const BoundedProblem& problem, const std::vector<double>& x0,
                             const LbfgsbOptions& options) {
  const size_t n = x0.size();
  LbfgsbResult result;
  result.x = ProjectToBox(x0, problem.lower, problem.upper);

  int evaluations = 0;
  auto eval_f = [&](const std::vector<double>& x) {
    ++evaluations;
    return problem.objective(x);
  };
  auto eval_g = [&](const std::vector<double>& x) {
    if (problem.gradient) {
      return problem.gradient(x);
    }
    evaluations += static_cast<int>(2 * n);
    return FiniteDifferenceGradient(problem.objective, x, problem.lower, problem.upper,
                                    options.fd_epsilon);
  };

  double f = eval_f(result.x);
  std::vector<double> g = eval_g(result.x);
  std::deque<CurvaturePair> pairs;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    const std::vector<bool> active = ActiveSet(result.x, g, problem.lower, problem.upper);
    std::vector<double> pg = g;
    for (size_t i = 0; i < n; ++i) {
      if (active[i]) {
        pg[i] = 0.0;
      }
    }
    if (InfNorm(pg) < options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Two-loop recursion on the free variables.
    std::vector<double> direction = pg;
    for (double& d : direction) {
      d = -d;
    }
    std::vector<double> alphas(pairs.size(), 0.0);
    for (size_t k = pairs.size(); k-- > 0;) {
      alphas[k] = pairs[k].rho * Dot(pairs[k].s, direction);
      for (size_t i = 0; i < n; ++i) {
        direction[i] -= alphas[k] * pairs[k].y[i];
      }
    }
    if (!pairs.empty()) {
      const auto& last = pairs.back();
      const double yy = Dot(last.y, last.y);
      if (yy > 0.0) {
        const double gamma = Dot(last.s, last.y) / yy;
        for (double& d : direction) {
          d *= gamma;
        }
      }
    }
    for (size_t k = 0; k < pairs.size(); ++k) {
      const double beta = pairs[k].rho * Dot(pairs[k].y, direction);
      for (size_t i = 0; i < n; ++i) {
        direction[i] += (alphas[k] - beta) * pairs[k].s[i];
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (active[i]) {
        direction[i] = 0.0;
      }
    }
    // Fall back to steepest descent if the quasi-Newton direction is not a
    // descent direction (can happen right after curvature resets).
    double descent = Dot(g, direction);
    if (!(descent < 0.0)) {
      for (size_t i = 0; i < n; ++i) {
        direction[i] = -pg[i];
      }
      descent = Dot(g, direction);
      if (!(descent < 0.0)) {
        result.converged = true;
        break;
      }
    }

    // Projected line search along the given direction: backtracks from step 1
    // until Armijo holds, then forward-expands by doubling while the objective
    // keeps improving (guards against under-scaled quasi-Newton directions
    // when the curvature memory is stale). Returns true on acceptance,
    // filling x_new / f_new.
    double f_new = f;
    std::vector<double> x_new;
    auto try_step = [&](double step, std::vector<double>* x_out, double* f_out) {
      *x_out = result.x;
      for (size_t i = 0; i < n; ++i) {
        (*x_out)[i] += step * direction[i];
      }
      *x_out = ProjectToBox(std::move(*x_out), problem.lower, problem.upper);
      *f_out = eval_f(*x_out);
      double model_decrease = 0.0;
      for (size_t i = 0; i < n; ++i) {
        model_decrease += g[i] * ((*x_out)[i] - result.x[i]);
      }
      return model_decrease < 0.0 && *f_out <= f + options.armijo_c1 * model_decrease;
    };
    auto line_search = [&](const std::vector<double>& dir) {
      direction = dir;
      double step = 1.0;
      bool ok = false;
      for (int ls = 0; ls < options.max_line_search_steps; ++ls) {
        ok = try_step(step, &x_new, &f_new);
        if (ok) {
          break;
        }
        bool moved = false;
        for (size_t i = 0; i < n; ++i) {
          if (x_new[i] != result.x[i]) {
            moved = true;
            break;
          }
        }
        if (!moved) {
          return false;  // Every coordinate pinned to a bound.
        }
        step *= 0.5;
      }
      if (!ok) {
        return false;
      }
      // Forward expansion from the accepted step.
      for (int grow = 0; grow < options.max_line_search_steps; ++grow) {
        std::vector<double> x_try;
        double f_try = 0.0;
        if (!try_step(step * 2.0, &x_try, &f_try) || f_try >= f_new) {
          break;
        }
        step *= 2.0;
        x_new = std::move(x_try);
        f_new = f_try;
      }
      return true;
    };

    bool accepted = line_search(direction);
    if (!accepted && !pairs.empty()) {
      // The quasi-Newton direction can be poorly scaled when the curvature
      // memory is stale; reset it and retry with projected steepest descent.
      pairs.clear();
      std::vector<double> steepest(n);
      const double scale = 1.0 / std::max(1.0, InfNorm(pg));
      for (size_t i = 0; i < n; ++i) {
        steepest[i] = -pg[i] * scale;
      }
      accepted = line_search(steepest);
    }
    if (!accepted) {
      result.converged = InfNorm(pg) < 1e-4;
      break;
    }

    std::vector<double> g_new = eval_g(x_new);
    CurvaturePair pair;
    pair.s.resize(n);
    pair.y.resize(n);
    for (size_t i = 0; i < n; ++i) {
      pair.s[i] = x_new[i] - result.x[i];
      pair.y[i] = g_new[i] - g[i];
    }
    const double sy = Dot(pair.s, pair.y);
    const double ss = Dot(pair.s, pair.s);
    if (sy > 1e-12 * std::sqrt(ss) * std::sqrt(Dot(pair.y, pair.y)) && sy > 0.0) {
      pair.rho = 1.0 / sy;
      pairs.push_back(std::move(pair));
      if (pairs.size() > static_cast<size_t>(options.history)) {
        pairs.pop_front();
      }
    }

    const double f_prev = f;
    result.x = std::move(x_new);
    f = f_new;
    g = std::move(g_new);
    if (std::fabs(f_prev - f) <=
        options.function_tolerance * std::max({std::fabs(f_prev), std::fabs(f), 1.0})) {
      result.converged = true;
      break;
    }
  }

  result.value = f;
  result.evaluations = evaluations;
  return result;
}

LbfgsbResult MinimizeBoundedMultiStart(const BoundedProblem& problem, const std::vector<double>& x0,
                                       int extra_starts, Rng& rng, const LbfgsbOptions& options) {
  LbfgsbResult best = MinimizeBounded(problem, x0, options);
  for (int s = 0; s < extra_starts; ++s) {
    std::vector<double> start(x0.size());
    for (size_t i = 0; i < start.size(); ++i) {
      const double lo = problem.lower[i];
      const double hi = problem.upper[i];
      if (std::isfinite(lo) && std::isfinite(hi)) {
        start[i] = rng.Uniform(lo, hi);
      } else if (std::isfinite(lo)) {
        start[i] = lo + rng.Exponential(1.0);
      } else if (std::isfinite(hi)) {
        start[i] = hi - rng.Exponential(1.0);
      } else {
        start[i] = rng.Normal(0.0, 1.0);
      }
    }
    LbfgsbResult candidate = MinimizeBounded(problem, start, options);
    if (candidate.value < best.value) {
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace pollux
