#include "minidl/mlp.h"

#include <cmath>

#include "util/rng.h"

namespace pollux {

Mlp::Mlp(size_t input_dim, size_t hidden_units, uint64_t seed)
    : input_dim_(input_dim), hidden_units_(hidden_units) {
  Rng rng(seed);
  if (hidden_units_ == 0) {
    params_.resize(input_dim_ + 1, 0.0);
    for (size_t d = 0; d < input_dim_; ++d) {
      params_[d] = rng.Normal(0.0, 1.0 / std::sqrt(static_cast<double>(input_dim_)));
    }
    return;
  }
  params_.resize(hidden_units_ * input_dim_ + hidden_units_ + hidden_units_ + 1, 0.0);
  const double w1_scale = 1.0 / std::sqrt(static_cast<double>(input_dim_));
  const double w2_scale = 1.0 / std::sqrt(static_cast<double>(hidden_units_));
  for (size_t i = 0; i < hidden_units_ * input_dim_; ++i) {
    params_[i] = rng.Normal(0.0, w1_scale);
  }
  const size_t w2_offset = hidden_units_ * input_dim_ + hidden_units_;
  for (size_t h = 0; h < hidden_units_; ++h) {
    params_[w2_offset + h] = rng.Normal(0.0, w2_scale);
  }
}

double Mlp::Predict(const Dataset& data, size_t row, std::vector<double>* hidden_out) const {
  if (hidden_units_ == 0) {
    double y = params_[input_dim_];  // Bias.
    for (size_t d = 0; d < input_dim_; ++d) {
      y += params_[d] * data.features.at(row, d);
    }
    return y;
  }
  const size_t b1_offset = hidden_units_ * input_dim_;
  const size_t w2_offset = b1_offset + hidden_units_;
  const size_t b2_offset = w2_offset + hidden_units_;
  double y = params_[b2_offset];
  if (hidden_out != nullptr) {
    hidden_out->resize(hidden_units_);
  }
  for (size_t h = 0; h < hidden_units_; ++h) {
    double pre = params_[b1_offset + h];
    const size_t w1_row = h * input_dim_;
    for (size_t d = 0; d < input_dim_; ++d) {
      pre += params_[w1_row + d] * data.features.at(row, d);
    }
    const double act = std::tanh(pre);
    if (hidden_out != nullptr) {
      (*hidden_out)[h] = act;
    }
    y += params_[w2_offset + h] * act;
  }
  return y;
}

double Mlp::Loss(const Dataset& data, std::span<const size_t> indices) const {
  double total = 0.0;
  for (size_t row : indices) {
    const double err = Predict(data, row, nullptr) - data.labels[row];
    total += err * err;
  }
  return indices.empty() ? 0.0 : total / static_cast<double>(indices.size());
}

double Mlp::LossAndGradient(const Dataset& data, std::span<const size_t> indices,
                            std::vector<double>* gradient) const {
  gradient->assign(params_.size(), 0.0);
  if (indices.empty()) {
    return 0.0;
  }
  double total = 0.0;
  std::vector<double> hidden;
  const double inv_n = 1.0 / static_cast<double>(indices.size());
  for (size_t row : indices) {
    const double prediction = Predict(data, row, &hidden);
    const double err = prediction - data.labels[row];
    total += err * err;
    const double dl_dy = 2.0 * err * inv_n;  // d(MSE)/d(prediction).
    if (hidden_units_ == 0) {
      for (size_t d = 0; d < input_dim_; ++d) {
        (*gradient)[d] += dl_dy * data.features.at(row, d);
      }
      (*gradient)[input_dim_] += dl_dy;
      continue;
    }
    const size_t b1_offset = hidden_units_ * input_dim_;
    const size_t w2_offset = b1_offset + hidden_units_;
    const size_t b2_offset = w2_offset + hidden_units_;
    (*gradient)[b2_offset] += dl_dy;
    for (size_t h = 0; h < hidden_units_; ++h) {
      (*gradient)[w2_offset + h] += dl_dy * hidden[h];
      const double dl_dpre = dl_dy * params_[w2_offset + h] * (1.0 - hidden[h] * hidden[h]);
      (*gradient)[b1_offset + h] += dl_dpre;
      const size_t w1_row = h * input_dim_;
      for (size_t d = 0; d < input_dim_; ++d) {
        (*gradient)[w1_row + d] += dl_dpre * data.features.at(row, d);
      }
    }
  }
  return total * inv_n;
}

void Mlp::ApplyGradient(const std::vector<double>& gradient, double learning_rate) {
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i] -= learning_rate * gradient[i];
  }
}

}  // namespace pollux
