// Data-parallel SGD trainer integrating AdaScale and the GNS estimators with
// a real training loop (Sec. 4.3's PolluxAgent-in-PyTorch integration, scaled
// down to minidl).
//
// Each Step(m) splits a global batch of m samples across `replicas` simulated
// workers, computes each worker's real gradient, estimates the gradient
// moments from the per-replica gradients (or the single-replica differenced
// estimator when replicas == 1), updates AdaScale, and applies the averaged
// gradient with the AdaScale-adapted learning rate.

#ifndef POLLUX_MINIDL_TRAINER_H_
#define POLLUX_MINIDL_TRAINER_H_

#include "core/adascale.h"
#include "minidl/dataset.h"
#include "minidl/mlp.h"
#include "minidl/optimizer.h"

namespace pollux {

struct TrainerOptions {
  long base_batch_size = 32;  // m0.
  double base_lr = 0.05;      // eta_0.
  int replicas = 1;           // Simulated data-parallel workers.
  double gns_smoothing = 0.9;
  uint64_t seed = 1;
  // Momentum / weight-decay SGD (0 = plain SGD).
  SgdOptions sgd;
  // Step-decay milestones (in real steps) and factor; empty = constant base
  // LR. AdaScale's gain multiplies the scheduled LR.
  std::vector<long> lr_milestones;
  double lr_decay_factor = 0.1;
};

class DataParallelTrainer {
 public:
  // `model` and `data` must outlive the trainer.
  DataParallelTrainer(Mlp* model, const Dataset* data, TrainerOptions options);

  // Runs one data-parallel SGD step with the given global batch size
  // (m >= m0). Returns the training loss over the batch.
  double Step(long batch_size);

  // Statistical progress in m0-equivalent iterations (sum of AdaScale gains).
  double ScaleInvariantIterations() const { return adascale_.scale_invariant_iterations(); }

  const AdaScaleState& adascale() const { return adascale_; }
  long steps() const { return adascale_.steps(); }
  double last_gain() const { return last_gain_; }
  double last_learning_rate() const { return last_lr_; }
  int replicas() const { return options_.replicas; }

  // Full-dataset loss (for validation-style checks).
  double FullLoss() const;

  // Averaged gradient of the most recent step (empty before the first step).
  const std::vector<double>& last_gradient() const { return previous_gradient_; }

  // Per-replica gradients of the most recent step (what a framework hook
  // would hand to the GNS estimators).
  const std::vector<std::vector<double>>& last_replica_gradients() const {
    return last_replica_gradients_;
  }

 private:
  Mlp* model_;
  const Dataset* data_;
  TrainerOptions options_;
  MinibatchSampler sampler_;
  AdaScaleState adascale_;
  SgdOptimizer optimizer_;
  StepDecaySchedule schedule_;
  std::vector<double> previous_gradient_;  // For the differenced estimator.
  std::vector<std::vector<double>> last_replica_gradients_;
  bool has_previous_gradient_ = false;
  double last_gain_ = 1.0;
  double last_lr_ = 0.0;
};

}  // namespace pollux

#endif  // POLLUX_MINIDL_TRAINER_H_
