#include "minidl/dataset.h"

#include <cmath>

#include "util/rng.h"

namespace pollux {

Dataset MakeSyntheticRegression(size_t n, size_t dim, size_t hidden_units, double noise_stddev,
                                uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.features = Matrix(n, dim);
  data.labels.resize(n);
  for (double& x : data.features.data) {
    x = rng.Normal(0.0, 1.0);
  }
  if (hidden_units == 0) {
    std::vector<double> teacher(dim);
    for (double& w : teacher) {
      w = rng.Normal(0.0, 1.0);
    }
    for (size_t i = 0; i < n; ++i) {
      double y = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        y += teacher[d] * data.features.at(i, d);
      }
      data.labels[i] = y + rng.Normal(0.0, noise_stddev);
    }
    return data;
  }
  Matrix w1(hidden_units, dim);
  std::vector<double> w2(hidden_units);
  for (double& w : w1.data) {
    w = rng.Normal(0.0, 1.0 / std::sqrt(static_cast<double>(dim)));
  }
  for (double& w : w2) {
    w = rng.Normal(0.0, 1.0);
  }
  for (size_t i = 0; i < n; ++i) {
    double y = 0.0;
    for (size_t h = 0; h < hidden_units; ++h) {
      double pre = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        pre += w1.at(h, d) * data.features.at(i, d);
      }
      y += w2[h] * std::tanh(pre);
    }
    data.labels[i] = y + rng.Normal(0.0, noise_stddev);
  }
  return data;
}

MinibatchSampler::MinibatchSampler(size_t n, uint64_t seed) : rng_state_(seed) {
  order_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    order_[i] = i;
  }
  Shuffle();
}

void MinibatchSampler::Shuffle() {
  Rng rng(rng_state_);
  rng_state_ = rng.NextU64();
  rng.Shuffle(order_);
}

std::vector<size_t> MinibatchSampler::Next(size_t batch) {
  std::vector<size_t> indices;
  indices.reserve(batch);
  while (indices.size() < batch) {
    if (cursor_ >= order_.size()) {
      cursor_ = 0;
      ++epochs_;
      Shuffle();
    }
    indices.push_back(order_[cursor_++]);
  }
  return indices;
}

}  // namespace pollux
