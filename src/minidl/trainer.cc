#include "minidl/trainer.h"

#include <algorithm>

#include "core/gns.h"
#include "minidl/tensor.h"

namespace pollux {

DataParallelTrainer::DataParallelTrainer(Mlp* model, const Dataset* data, TrainerOptions options)
    : model_(model),
      data_(data),
      options_(options),
      sampler_(data->size(), options.seed),
      adascale_(options.base_batch_size, options.base_lr, options.gns_smoothing),
      optimizer_(model->param_count(), options.sgd),
      schedule_(options.base_lr, options.lr_milestones, options.lr_decay_factor) {}

double DataParallelTrainer::Step(long batch_size) {
  const long m = std::max(batch_size, options_.base_batch_size);
  const int replicas = std::max(1, options_.replicas);
  const std::vector<size_t> indices = sampler_.Next(static_cast<size_t>(m));

  // Per-replica gradients over disjoint shards of the global batch.
  std::vector<std::vector<double>> replica_grads(static_cast<size_t>(replicas));
  std::vector<double> mean_gradient(model_->param_count(), 0.0);
  double loss = 0.0;
  const size_t shard = indices.size() / static_cast<size_t>(replicas);
  for (int r = 0; r < replicas; ++r) {
    const size_t begin = static_cast<size_t>(r) * shard;
    const size_t end = r == replicas - 1 ? indices.size() : begin + shard;
    const std::span<const size_t> slice(indices.data() + begin, end - begin);
    loss += model_->LossAndGradient(*data_, slice, &replica_grads[static_cast<size_t>(r)]) *
            static_cast<double>(slice.size());
    Axpy(1.0, replica_grads[static_cast<size_t>(r)], mean_gradient);
  }
  loss /= static_cast<double>(indices.size());
  Scale(mean_gradient, 1.0 / replicas);

  // Gradient moment estimation: multi-replica when possible, differenced
  // estimator with a single worker (Sec. 3.1).
  std::optional<GnsSample> sample;
  if (replicas >= 2) {
    sample = EstimateGnsFromReplicas(replica_grads, static_cast<double>(m));
  } else if (has_previous_gradient_) {
    sample = EstimateGnsDifferenced(previous_gradient_, mean_gradient, static_cast<double>(m));
  }
  previous_gradient_ = mean_gradient;
  last_replica_gradients_ = std::move(replica_grads);
  has_previous_gradient_ = true;

  if (sample.has_value()) {
    last_gain_ = adascale_.Update(*sample, m);
  } else {
    last_gain_ = adascale_.GainAt(m);
  }
  // AdaScale's gain scales the (possibly step-decayed) base learning rate.
  const double scheduled = schedule_.LearningRateAt(adascale_.steps());
  last_lr_ = last_gain_ * scheduled;
  optimizer_.Step(model_->mutable_params(), mean_gradient, last_lr_);
  return loss;
}

double DataParallelTrainer::FullLoss() const {
  std::vector<size_t> all(data_->size());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  return model_->Loss(*data_, all);
}

}  // namespace pollux
