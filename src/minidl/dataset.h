// Synthetic datasets for the minidl training substrate.

#ifndef POLLUX_MINIDL_DATASET_H_
#define POLLUX_MINIDL_DATASET_H_

#include <cstdint>
#include <vector>

#include "minidl/tensor.h"

namespace pollux {

struct Dataset {
  Matrix features;             // n x dim.
  std::vector<double> labels;  // n.

  size_t size() const { return features.rows; }
  size_t dim() const { return features.cols; }
};

// Regression data from a random nonlinear teacher:
// y = tanh(W1 x) . w2 + noise. With hidden_units == 0 the teacher is linear.
Dataset MakeSyntheticRegression(size_t n, size_t dim, size_t hidden_units, double noise_stddev,
                                uint64_t seed);

// A deterministic epoch-shuffled minibatch sampler over [0, n).
class MinibatchSampler {
 public:
  MinibatchSampler(size_t n, uint64_t seed);

  // Returns the next `batch` indices, reshuffling at epoch boundaries.
  std::vector<size_t> Next(size_t batch);

  size_t epochs_completed() const { return epochs_; }

 private:
  std::vector<size_t> order_;
  size_t cursor_ = 0;
  size_t epochs_ = 0;
  uint64_t rng_state_;

  void Shuffle();
};

}  // namespace pollux

#endif  // POLLUX_MINIDL_DATASET_H_
