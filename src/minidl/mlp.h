// A one-hidden-layer MLP (or plain linear model) with mean-squared-error
// loss and exact backpropagation, exposing its parameters and gradients as
// flat vectors — the representation the GNS estimators and AdaScale consume.

#ifndef POLLUX_MINIDL_MLP_H_
#define POLLUX_MINIDL_MLP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "minidl/dataset.h"

namespace pollux {

class Mlp {
 public:
  // hidden_units == 0 builds a linear regression model.
  Mlp(size_t input_dim, size_t hidden_units, uint64_t seed);

  size_t param_count() const { return params_.size(); }
  const std::vector<double>& params() const { return params_; }
  std::vector<double>& mutable_params() { return params_; }
  void set_params(std::vector<double> params) { params_ = std::move(params); }

  // Mean squared error over the given sample indices.
  double Loss(const Dataset& data, std::span<const size_t> indices) const;

  // MSE and its gradient (flat, same layout as params()) over the indices.
  double LossAndGradient(const Dataset& data, std::span<const size_t> indices,
                         std::vector<double>* gradient) const;

  // In-place SGD update: params -= lr * gradient.
  void ApplyGradient(const std::vector<double>& gradient, double learning_rate);

  size_t input_dim() const { return input_dim_; }
  size_t hidden_units() const { return hidden_units_; }

 private:
  // Parameter layout: [W1 (hidden x dim) | b1 (hidden) | w2 (hidden) | b2]
  // for the MLP; [w (dim) | b] for the linear model.
  double Predict(const Dataset& data, size_t row, std::vector<double>* hidden_out) const;

  size_t input_dim_;
  size_t hidden_units_;
  std::vector<double> params_;
};

}  // namespace pollux

#endif  // POLLUX_MINIDL_MLP_H_
