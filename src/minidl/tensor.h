// Minimal dense linear algebra for the minidl training substrate.
//
// The paper integrates PolluxAgent with PyTorch training loops; minidl is the
// smallest real training stack that exercises the same integration surface:
// real models, real gradients, real SGD — enough to drive AdaScale and the
// gradient-noise-scale estimators end to end without a DL framework.

#ifndef POLLUX_MINIDL_TENSOR_H_
#define POLLUX_MINIDL_TENSOR_H_

#include <cstddef>
#include <vector>

namespace pollux {

// Row-major dense matrix.
struct Matrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> data;

  Matrix() = default;
  Matrix(size_t r, size_t c) : rows(r), cols(c), data(r * c, 0.0) {}

  double& at(size_t r, size_t c) { return data[r * cols + c]; }
  double at(size_t r, size_t c) const { return data[r * cols + c]; }
};

// C = A * B. Dimensions must agree.
Matrix MatMul(const Matrix& a, const Matrix& b);

// C = A * B^T.
Matrix MatMulTransposed(const Matrix& a, const Matrix& b);

// Element-wise tanh and its derivative (1 - tanh^2), applied in place.
void TanhInPlace(Matrix& m);
Matrix TanhDerivativeFromOutput(const Matrix& tanh_output);

// Element-wise product, in place into `a`.
void HadamardInPlace(Matrix& a, const Matrix& b);

// Vector helpers over flattened parameter/gradient vectors.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);
double Dot(const std::vector<double>& a, const std::vector<double>& b);
double SquaredNorm(const std::vector<double>& v);
void Scale(std::vector<double>& v, double factor);

}  // namespace pollux

#endif  // POLLUX_MINIDL_TENSOR_H_
