#include "minidl/optimizer.h"

#include <algorithm>

namespace pollux {

SgdOptimizer::SgdOptimizer(size_t param_count, SgdOptions options)
    : options_(options), velocity_(param_count, 0.0) {}

void SgdOptimizer::Step(std::vector<double>& params, const std::vector<double>& gradient,
                        double learning_rate) {
  for (size_t i = 0; i < params.size(); ++i) {
    double g = gradient[i];
    if (options_.weight_decay > 0.0) {
      g += options_.weight_decay * params[i];
    }
    if (options_.momentum > 0.0) {
      velocity_[i] = options_.momentum * velocity_[i] + g;
      g = options_.nesterov ? gradient[i] + options_.momentum * velocity_[i] : velocity_[i];
    }
    params[i] -= learning_rate * g;
  }
}

void SgdOptimizer::Reset() { std::fill(velocity_.begin(), velocity_.end(), 0.0); }

StepDecaySchedule::StepDecaySchedule(double base_lr, std::vector<long> milestones, double factor)
    : base_lr_(base_lr), milestones_(std::move(milestones)), factor_(factor) {
  std::sort(milestones_.begin(), milestones_.end());
}

double StepDecaySchedule::LearningRateAt(long step) const {
  double lr = base_lr_;
  for (long milestone : milestones_) {
    if (step >= milestone) {
      lr *= factor_;
    }
  }
  return lr;
}

}  // namespace pollux
