// SGD optimizers and learning-rate schedules for minidl.
//
// SgdOptimizer implements momentum SGD with optional L2 weight decay, the
// update rule the paper's workloads actually train with; LrSchedule
// implements step decay (the "decay by 10x at epochs 30/60" pattern whose
// effect on the gradient noise scale drives Fig. 2a's jumps).

#ifndef POLLUX_MINIDL_OPTIMIZER_H_
#define POLLUX_MINIDL_OPTIMIZER_H_

#include <cstddef>
#include <vector>

namespace pollux {

struct SgdOptions {
  double momentum = 0.0;      // 0 disables momentum.
  double weight_decay = 0.0;  // L2 coefficient; 0 disables.
  bool nesterov = false;
};

class SgdOptimizer {
 public:
  SgdOptimizer(size_t param_count, SgdOptions options = {});

  // In-place update: params -= lr * step(gradient). With momentum, maintains
  // velocity v = mu * v + g and steps along v (or g + mu * v for Nesterov).
  void Step(std::vector<double>& params, const std::vector<double>& gradient,
            double learning_rate);

  void Reset();
  const std::vector<double>& velocity() const { return velocity_; }

 private:
  SgdOptions options_;
  std::vector<double> velocity_;
};

// Piecewise-constant step decay: lr = base * factor^(#milestones passed).
class StepDecaySchedule {
 public:
  StepDecaySchedule(double base_lr, std::vector<long> milestones, double factor);

  double LearningRateAt(long step) const;

  double base_lr() const { return base_lr_; }

 private:
  double base_lr_;
  std::vector<long> milestones_;
  double factor_;
};

}  // namespace pollux

#endif  // POLLUX_MINIDL_OPTIMIZER_H_
