#include "minidl/tensor.h"

#include <cmath>

namespace pollux {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows, b.cols);
  for (size_t i = 0; i < a.rows; ++i) {
    for (size_t k = 0; k < a.cols; ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) {
        continue;
      }
      for (size_t j = 0; j < b.cols; ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix MatMulTransposed(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows, b.rows);
  for (size_t i = 0; i < a.rows; ++i) {
    for (size_t j = 0; j < b.rows; ++j) {
      double total = 0.0;
      for (size_t k = 0; k < a.cols; ++k) {
        total += a.at(i, k) * b.at(j, k);
      }
      c.at(i, j) = total;
    }
  }
  return c;
}

void TanhInPlace(Matrix& m) {
  for (double& x : m.data) {
    x = std::tanh(x);
  }
}

Matrix TanhDerivativeFromOutput(const Matrix& tanh_output) {
  Matrix d(tanh_output.rows, tanh_output.cols);
  for (size_t i = 0; i < d.data.size(); ++i) {
    d.data[i] = 1.0 - tanh_output.data[i] * tanh_output.data[i];
  }
  return d;
}

void HadamardInPlace(Matrix& a, const Matrix& b) {
  for (size_t i = 0; i < a.data.size(); ++i) {
    a.data[i] *= b.data[i];
  }
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += a[i] * b[i];
  }
  return total;
}

double SquaredNorm(const std::vector<double>& v) { return Dot(v, v); }

void Scale(std::vector<double>& v, double factor) {
  for (double& x : v) {
    x *= factor;
  }
}

}  // namespace pollux
