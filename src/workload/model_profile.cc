#include "workload/model_profile.h"

#include <algorithm>
#include <cmath>

#include "core/efficiency.h"

namespace pollux {

double GnsCurve::PhiAt(double progress_fraction) const {
  const double p = std::clamp(progress_fraction, 0.0, 1.0);
  const double lo = std::max(phi_start, 1e-6);
  const double hi = std::max(phi_end, lo);
  double phi = lo * std::pow(hi / lo, p);
  for (double point : decay_points) {
    if (p >= point) {
      phi *= decay_boost;
    }
  }
  return phi;
}

BatchLimits ModelProfile::Limits() const {
  BatchLimits limits;
  limits.min_batch = base_batch_size;
  limits.max_batch_total = max_batch_total;
  limits.max_batch_per_gpu = max_batch_per_gpu;
  return limits;
}

double ModelProfile::TrueIterTime(const Placement& placement, long batch_size) const {
  return IterTime(true_params, placement, static_cast<double>(batch_size));
}

double ModelProfile::TrueRackIterTime(const RackPlacement& placement, long batch_size,
                                      double rack_link_factor, double gpu_scale) const {
  RackThroughputParams params;
  params.alpha_grad = true_params.alpha_grad;
  params.beta_grad = true_params.beta_grad;
  params.alpha_sync_local = true_params.alpha_sync_local;
  params.beta_sync_local = true_params.beta_sync_local;
  params.alpha_sync_node = true_params.alpha_sync_node;
  params.beta_sync_node = true_params.beta_sync_node;
  params.alpha_sync_rack = true_params.alpha_sync_node * rack_link_factor;
  params.beta_sync_rack = true_params.beta_sync_node * rack_link_factor;
  params.gamma = true_params.gamma;
  const double base = RackIterTime(params, placement, static_cast<double>(batch_size));
  return gpu_scale > 0.0 ? base / gpu_scale : base;
}

double ModelProfile::TrueThroughput(const Placement& placement, long batch_size) const {
  return ModelThroughput(true_params, placement, static_cast<double>(batch_size));
}

double ModelProfile::TrueEfficiency(long batch_size, double progress_fraction) const {
  return StatisticalEfficiency(gns.PhiAt(progress_fraction),
                               static_cast<double>(base_batch_size),
                               static_cast<double>(batch_size));
}

double ModelProfile::TrueGoodput(const Placement& placement, long batch_size,
                                 double progress_fraction) const {
  return TrueThroughput(placement, batch_size) * TrueEfficiency(batch_size, progress_fraction);
}

namespace {

// Calibrated so that single-GPU completion times land in each model's Table-1
// GPU-time category on T4-class hardware, and scaling/efficiency shapes match
// the paper's figures (see DESIGN.md).
ModelProfile MakeResNet50() {
  ModelProfile p;
  p.name = "resnet50-imagenet";
  p.kind = ModelKind::kResNet50ImageNet;
  p.category = JobCategory::kXLarge;
  p.true_params = {0.02, 0.010, 0.08, 0.004, 0.25, 0.012, 2.2};
  p.gns = GnsCurve{1500.0, 8000.0, {1.0 / 3.0, 2.0 / 3.0}, 3.0};
  p.base_batch_size = 200;
  p.base_lr = 0.1;
  p.max_batch_per_gpu = 256;
  p.max_batch_total = 32000;
  p.dataset_size = 1281650.0;
  p.target_epochs = 45.0;
  return p;
}

ModelProfile MakeYoloV3() {
  ModelProfile p;
  p.name = "yolov3-voc";
  p.kind = ModelKind::kYoloV3Voc;
  p.category = JobCategory::kLarge;
  p.true_params = {0.05, 0.0167, 0.10, 0.005, 0.30, 0.015, 2.0};
  p.gns = GnsCurve{30.0, 300.0, {0.6}, 2.0};
  p.base_batch_size = 8;
  p.base_lr = 1e-3;
  p.max_batch_per_gpu = 8;
  p.max_batch_total = 128;
  p.dataset_size = 16551.0;
  p.target_epochs = 180.0;
  return p;
}

ModelProfile MakeDeepSpeech2() {
  ModelProfile p;
  p.name = "deepspeech2-arctic";
  p.kind = ModelKind::kDeepSpeech2;
  p.category = JobCategory::kMedium;
  p.true_params = {0.05, 3.3e-3, 0.05, 0.003, 0.15, 0.008, 2.0};
  p.gns = GnsCurve{150.0, 1500.0, {}, 1.0};
  p.base_batch_size = 32;
  p.base_lr = 3e-4;
  p.max_batch_per_gpu = 32;
  p.max_batch_total = 512;
  p.dataset_size = 50000.0;
  p.target_epochs = 100.0;
  return p;
}

ModelProfile MakeResNet18() {
  ModelProfile p;
  p.name = "resnet18-cifar10";
  p.kind = ModelKind::kResNet18Cifar10;
  p.category = JobCategory::kSmall;
  p.true_params = {0.01, 6.7e-4, 0.015, 0.001, 0.06, 0.004, 1.8};
  p.gns = GnsCurve{300.0, 3000.0, {0.5}, 2.5};
  p.base_batch_size = 128;
  p.base_lr = 0.05;
  p.max_batch_per_gpu = 1024;
  p.max_batch_total = 8192;
  p.dataset_size = 50000.0;
  p.target_epochs = 40.0;
  return p;
}

ModelProfile MakeNeuMF() {
  ModelProfile p;
  p.name = "neumf-movielens";
  p.kind = ModelKind::kNeuMFMovieLens;
  p.category = JobCategory::kSmall;
  p.true_params = {0.005, 2.5e-5, 0.005, 0.0005, 0.02, 0.002, 1.5};
  p.gns = GnsCurve{800.0, 8000.0, {}, 1.0};
  p.base_batch_size = 256;
  p.base_lr = 2e-3;
  p.max_batch_per_gpu = 32768;
  p.max_batch_total = 262144;
  p.dataset_size = 4970845.0;
  p.target_epochs = 7.0;
  return p;
}

}  // namespace

const ModelProfile& GetModelProfile(ModelKind kind) {
  static const ModelProfile* const kResNet50 = new ModelProfile(MakeResNet50());
  static const ModelProfile* const kYolo = new ModelProfile(MakeYoloV3());
  static const ModelProfile* const kDeepSpeech = new ModelProfile(MakeDeepSpeech2());
  static const ModelProfile* const kResNet18 = new ModelProfile(MakeResNet18());
  static const ModelProfile* const kNeuMF = new ModelProfile(MakeNeuMF());
  switch (kind) {
    case ModelKind::kResNet50ImageNet:
      return *kResNet50;
    case ModelKind::kYoloV3Voc:
      return *kYolo;
    case ModelKind::kDeepSpeech2:
      return *kDeepSpeech;
    case ModelKind::kResNet18Cifar10:
      return *kResNet18;
    case ModelKind::kNeuMFMovieLens:
      return *kNeuMF;
  }
  return *kResNet18;
}

const std::vector<ModelKind>& AllModelKinds() {
  static const std::vector<ModelKind>* const kAll = new std::vector<ModelKind>{
      ModelKind::kResNet50ImageNet, ModelKind::kYoloV3Voc, ModelKind::kDeepSpeech2,
      ModelKind::kResNet18Cifar10, ModelKind::kNeuMFMovieLens};
  return *kAll;
}

const char* ModelKindName(ModelKind kind) { return GetModelProfile(kind).name.c_str(); }

const char* JobCategoryName(JobCategory category) {
  switch (category) {
    case JobCategory::kSmall:
      return "small";
    case JobCategory::kMedium:
      return "medium";
    case JobCategory::kLarge:
      return "large";
    case JobCategory::kXLarge:
      return "xlarge";
  }
  return "?";
}

}  // namespace pollux
