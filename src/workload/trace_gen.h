// Synthetic workload traces (Sec. 5.1).
//
// The paper samples 160 job submissions from an 8-hour window of the
// Microsoft (Philly) cluster trace that contains the daily submission peak
// (3x the rate of the window's first hour, Fig. 6), maps each traced job to a
// Table-1 model in the same GPU-time category, and configures it either
// "ideally tuned" (Sec. 5.2) or "user-configured" straight from the trace
// (Sec. 5.3.1). This module reproduces all three mechanisms synthetically:
// the diurnal arrival process, the category mix, and both configurators.

#ifndef POLLUX_WORKLOAD_TRACE_GEN_H_
#define POLLUX_WORKLOAD_TRACE_GEN_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "workload/model_profile.h"

namespace pollux {

struct JobSpec {
  uint64_t job_id = 0;
  ModelKind model = ModelKind::kResNet18Cifar10;
  double submit_time = 0.0;  // Seconds from workload start.
  // The configuration a user would have submitted: number of GPUs (used by
  // Tiresias verbatim; ignored by resource-adaptive schedulers) and batch
  // size (used by Tiresias and Optimus; Pollux adapts it).
  int requested_gpus = 1;
  long batch_size = 0;
  bool user_configured = false;
};

struct TraceOptions {
  int num_jobs = 160;
  double duration = 8.0 * 3600.0;
  // Multiplies num_jobs (Fig. 8's load knob).
  double load_factor = 1.0;
  // Fraction of jobs configured like real trace users instead of ideally
  // tuned (Fig. 7's knob: 0, 1/3, 2/3, 1).
  double user_configured_fraction = 0.0;
  int gpus_per_node = 4;
  int max_gpus = 64;
  uint64_t seed = 1;
};

// Relative submission rate for each hour of a 24-hour day (Fig. 6 shape).
double DiurnalWeight24(int hour);

// First hour of the 8-hour sampling window (contains the peak in its fourth
// hour at 3x the rate of its first hour).
int TraceWindowStartHour();

// Relative submission rate of hour [0, 8) within the sampling window.
double WindowHourWeight(int window_hour);

// True (ground-truth) speedup of running `profile` on num_gpus GPUs packed
// onto ceil(num_gpus / gpus_per_node) nodes, with the batch size optimized,
// relative to one GPU, at the given training progress.
double TrueSpeedup(const ModelProfile& profile, int num_gpus, int gpus_per_node,
                   double progress_fraction);

// Goodput-optimal batch size for the given GPU count at the given progress
// under the ground-truth model.
long OptimalBatchForGpus(const ModelProfile& profile, int num_gpus, int gpus_per_node,
                         double progress_fraction);

struct JobConfig {
  int num_gpus = 1;
  long batch_size = 0;
};

// Sec. 5.2's "highly rational user": a GPU count whose true speedup is
// 50%-80% of ideal (chosen uniformly among valid counts), with the optimal
// batch size for that count.
JobConfig SampleTunedConfig(const ModelProfile& profile, int gpus_per_node, int max_gpus,
                            Rng& rng);

// Sec. 5.3.1's realistic user: GPU count drawn from a Philly-like request
// distribution (dominated by small requests), batch size within a factor of
// 2 of the most efficient batch for that count.
JobConfig SampleUserConfig(const ModelProfile& profile, int gpus_per_node, int max_gpus,
                           Rng& rng);

// Samples a full trace: arrival times from the diurnal window, model kinds
// from the Table-1 category mix, and per-job configurations. Jobs are sorted
// by submission time and numbered from 0.
std::vector<JobSpec> GenerateTrace(const TraceOptions& options);

// Topology scenario traces (DESIGN.md §14). Starts from GenerateTrace's
// workload and re-draws a configurable fraction of jobs as sync-heavy
// multi-node gangs (YOLOv3 / DeepSpeech2, requests spanning at least two
// nodes, tuned batch size) whose iteration time is dominated by
// synchronization — the cross-rack-sensitive workloads the topology-aware
// placement targets. The redraw uses a dedicated RNG stream derived from the
// base seed, so the trace is deterministic per (options, fraction).
struct TopologyTraceOptions {
  TraceOptions base;
  double sync_heavy_fraction = 0.5;
};

std::vector<JobSpec> GenerateTopologyTrace(const TopologyTraceOptions& options);

// Hyperscale trace generation (ROADMAP "10k-node clusters and 100k-job
// traces"). Unlike GenerateTrace's single sequential RNG stream, every job
// draws from its own counter-derived stream, so the trace can be sampled in
// parallel yet is byte-identical for a given seed at any thread count. The
// diurnal day shape is tiled across the whole multi-week horizon.
struct HyperTraceOptions {
  int num_nodes = 10000;
  int gpus_per_node = 4;
  long num_jobs = 100000;
  double duration = 14.0 * 24.0 * 3600.0;  // Multi-week horizon, seconds.
  double user_configured_fraction = 0.0;
  // Per-job request ceiling; also clamped to the cluster's total GPUs so
  // every generated job is placeable.
  int max_request_gpus = 64;
  uint64_t seed = 1;
  // Worker threads for sampling (0 = all hardware threads). The emitted
  // trace does not depend on this value.
  int threads = 1;
};

std::vector<JobSpec> GenerateHyperscaleTrace(const HyperTraceOptions& options);

}  // namespace pollux

#endif  // POLLUX_WORKLOAD_TRACE_GEN_H_
