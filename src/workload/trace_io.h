// CSV import/export for workload traces, so externally-produced traces
// (e.g. re-derived from the real Philly data) can be replayed through the
// simulator, and synthesized traces can be archived for exact repeatability.
//
// Format (header required):
//   job_id,model,submit_time,requested_gpus,batch_size,user_configured
//   0,resnet18-cifar10,352.5,8,2048,0

#ifndef POLLUX_WORKLOAD_TRACE_IO_H_
#define POLLUX_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "workload/trace_gen.h"

namespace pollux {

// Writes the trace in CSV form.
void WriteTraceCsv(std::ostream& out, const std::vector<JobSpec>& jobs);

// Parses a CSV trace. Returns std::nullopt (and fills *error if non-null) on
// malformed input: missing/unknown header, unknown model name, non-numeric
// fields, or negative values.
std::optional<std::vector<JobSpec>> ReadTraceCsv(std::istream& in,
                                                 std::string* error = nullptr);

// Model-name lookup used by the reader ("resnet50-imagenet" etc., matching
// ModelKindName). Returns std::nullopt for unknown names.
std::optional<ModelKind> ModelKindFromName(const std::string& name);

}  // namespace pollux

#endif  // POLLUX_WORKLOAD_TRACE_IO_H_
