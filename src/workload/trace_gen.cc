#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "core/goodput.h"

namespace pollux {
namespace {

// Relative submission rates over a 24-hour day, shaped like Fig. 6: a quiet
// night, a morning ramp, the daily peak around midday, and a slow decline.
constexpr double kDiurnal[24] = {0.9, 0.7, 0.6, 0.55, 0.5, 0.6, 0.8, 1.2,
                                 1.8, 2.4, 3.6, 3.3,  3.0, 2.8, 2.5, 2.2,
                                 2.0, 1.8, 1.6, 1.4,  1.2, 1.1, 1.0, 0.95};

constexpr int kWindowStart = 7;  // Window hours 7..14: peak (3.6) is the 4th
                                 // hour at 3x the first hour (1.2).

// Training progress at which pre-submission tuning is assumed to have been
// evaluated (mid-training, as a one-shot user would).
constexpr double kTuningProgress = 0.4;

Placement PackedPlacement(int num_gpus, int gpus_per_node) {
  Placement placement;
  placement.num_gpus = num_gpus;
  placement.num_nodes = (num_gpus + gpus_per_node - 1) / gpus_per_node;
  return placement;
}

GoodputModel TrueGoodputModel(const ModelProfile& profile, double progress_fraction) {
  return GoodputModel(profile.true_params, profile.gns.PhiAt(progress_fraction),
                      profile.base_batch_size);
}

ModelKind SampleModelKind(Rng& rng) {
  // Table 1 workload fractions: 38% / 38% / 17% / 5% / 2%.
  const std::vector<double> weights = {0.02, 0.05, 0.17, 0.38, 0.38};
  static const ModelKind kOrder[] = {ModelKind::kResNet50ImageNet, ModelKind::kYoloV3Voc,
                                     ModelKind::kDeepSpeech2, ModelKind::kResNet18Cifar10,
                                     ModelKind::kNeuMFMovieLens};
  return kOrder[rng.WeightedIndex(weights)];
}

}  // namespace

double DiurnalWeight24(int hour) { return kDiurnal[((hour % 24) + 24) % 24]; }

int TraceWindowStartHour() { return kWindowStart; }

double WindowHourWeight(int window_hour) { return DiurnalWeight24(kWindowStart + window_hour); }

double TrueSpeedup(const ModelProfile& profile, int num_gpus, int gpus_per_node,
                   double progress_fraction) {
  const GoodputModel model = TrueGoodputModel(profile, progress_fraction);
  return Speedup(model, PackedPlacement(num_gpus, gpus_per_node), profile.Limits());
}

long OptimalBatchForGpus(const ModelProfile& profile, int num_gpus, int gpus_per_node,
                         double progress_fraction) {
  const GoodputModel model = TrueGoodputModel(profile, progress_fraction);
  return model.OptimizeBatchSize(PackedPlacement(num_gpus, gpus_per_node), profile.Limits())
      .batch_size;
}

JobConfig SampleTunedConfig(const ModelProfile& profile, int gpus_per_node, int max_gpus,
                            Rng& rng) {
  std::vector<int> valid;
  for (int k = 1; k <= max_gpus; ++k) {
    const double speedup = TrueSpeedup(profile, k, gpus_per_node, kTuningProgress);
    const double fraction = speedup / static_cast<double>(k);
    if (fraction >= 0.5 && fraction <= 0.8) {
      valid.push_back(k);
    }
  }
  JobConfig config;
  if (valid.empty()) {
    // Model does not scale into the 50%-80% band anywhere; a rational user
    // runs it on a single GPU.
    config.num_gpus = 1;
  } else {
    config.num_gpus =
        valid[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(valid.size()) - 1))];
  }
  config.batch_size =
      OptimalBatchForGpus(profile, config.num_gpus, gpus_per_node, kTuningProgress);
  return config;
}

JobConfig SampleUserConfig(const ModelProfile& profile, int gpus_per_node, int max_gpus,
                           Rng& rng) {
  // Philly-style request-size distribution: dominated by single-GPU asks.
  static const int kSizes[] = {1, 2, 4, 8, 16};
  const std::vector<double> weights = {0.70, 0.10, 0.12, 0.06, 0.02};
  JobConfig config;
  config.num_gpus = std::min(kSizes[rng.WeightedIndex(weights)], max_gpus);
  const long optimal =
      OptimalBatchForGpus(profile, config.num_gpus, gpus_per_node, kTuningProgress);
  // Within a factor of 2 of the most efficient batch size (log-uniform).
  const double factor = std::exp2(rng.Uniform(-1.0, 1.0));
  const BatchLimits limits = profile.Limits();
  const long scaled = std::lround(static_cast<double>(optimal) * factor);
  config.batch_size =
      std::clamp(scaled, limits.min_batch, limits.MaxFeasible(config.num_gpus));
  return config;
}

std::vector<JobSpec> GenerateTrace(const TraceOptions& options) {
  Rng rng(options.seed);
  const int num_jobs =
      std::max(1, static_cast<int>(std::lround(options.num_jobs * options.load_factor)));

  std::vector<double> hour_weights(8);
  for (int h = 0; h < 8; ++h) {
    hour_weights[static_cast<size_t>(h)] = WindowHourWeight(h);
  }
  const double hour_span = options.duration / 8.0;

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<size_t>(num_jobs));
  for (int i = 0; i < num_jobs; ++i) {
    JobSpec spec;
    spec.model = SampleModelKind(rng);
    const size_t hour = rng.WeightedIndex(hour_weights);
    spec.submit_time = (static_cast<double>(hour) + rng.NextDouble()) * hour_span;
    const ModelProfile& profile = GetModelProfile(spec.model);
    spec.user_configured = rng.Bernoulli(options.user_configured_fraction);
    const JobConfig config =
        spec.user_configured
            ? SampleUserConfig(profile, options.gpus_per_node, options.max_gpus, rng)
            : SampleTunedConfig(profile, options.gpus_per_node, options.max_gpus, rng);
    spec.requested_gpus = config.num_gpus;
    spec.batch_size = config.batch_size;
    jobs.push_back(spec);
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].job_id = i;
  }
  return jobs;
}

}  // namespace pollux
