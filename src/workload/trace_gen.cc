#include "workload/trace_gen.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/goodput.h"
#include "util/thread_pool.h"

namespace pollux {
namespace {

// Relative submission rates over a 24-hour day, shaped like Fig. 6: a quiet
// night, a morning ramp, the daily peak around midday, and a slow decline.
constexpr double kDiurnal[24] = {0.9, 0.7, 0.6, 0.55, 0.5, 0.6, 0.8, 1.2,
                                 1.8, 2.4, 3.6, 3.3,  3.0, 2.8, 2.5, 2.2,
                                 2.0, 1.8, 1.6, 1.4,  1.2, 1.1, 1.0, 0.95};

constexpr int kWindowStart = 7;  // Window hours 7..14: peak (3.6) is the 4th
                                 // hour at 3x the first hour (1.2).

// Training progress at which pre-submission tuning is assumed to have been
// evaluated (mid-training, as a one-shot user would).
constexpr double kTuningProgress = 0.4;

Placement PackedPlacement(int num_gpus, int gpus_per_node) {
  Placement placement;
  placement.num_gpus = num_gpus;
  placement.num_nodes = (num_gpus + gpus_per_node - 1) / gpus_per_node;
  return placement;
}

GoodputModel TrueGoodputModel(const ModelProfile& profile, double progress_fraction) {
  return GoodputModel(profile.true_params, profile.gns.PhiAt(progress_fraction),
                      profile.base_batch_size);
}

// Table 1 workload order shared by SampleModelKind and the hyperscale
// per-model menus (menu slot i holds kModelOrder[i]'s configurations).
constexpr ModelKind kModelOrder[] = {ModelKind::kResNet50ImageNet, ModelKind::kYoloV3Voc,
                                     ModelKind::kDeepSpeech2, ModelKind::kResNet18Cifar10,
                                     ModelKind::kNeuMFMovieLens};
constexpr size_t kNumModelKinds = sizeof(kModelOrder) / sizeof(kModelOrder[0]);

size_t SampleModelIndex(Rng& rng) {
  // Table 1 workload fractions: 38% / 38% / 17% / 5% / 2%.
  const std::vector<double> weights = {0.02, 0.05, 0.17, 0.38, 0.38};
  return rng.WeightedIndex(weights);
}

ModelKind SampleModelKind(Rng& rng) { return kModelOrder[SampleModelIndex(rng)]; }

// splitmix64 finalizer: turns (seed, job index) into an independent per-job
// RNG seed, so hyperscale sampling order (and thread count) cannot affect
// any job's draws.
uint64_t PerJobSeed(uint64_t seed, uint64_t index) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace

double DiurnalWeight24(int hour) { return kDiurnal[((hour % 24) + 24) % 24]; }

int TraceWindowStartHour() { return kWindowStart; }

double WindowHourWeight(int window_hour) { return DiurnalWeight24(kWindowStart + window_hour); }

double TrueSpeedup(const ModelProfile& profile, int num_gpus, int gpus_per_node,
                   double progress_fraction) {
  const GoodputModel model = TrueGoodputModel(profile, progress_fraction);
  return Speedup(model, PackedPlacement(num_gpus, gpus_per_node), profile.Limits());
}

long OptimalBatchForGpus(const ModelProfile& profile, int num_gpus, int gpus_per_node,
                         double progress_fraction) {
  const GoodputModel model = TrueGoodputModel(profile, progress_fraction);
  return model.OptimizeBatchSize(PackedPlacement(num_gpus, gpus_per_node), profile.Limits())
      .batch_size;
}

JobConfig SampleTunedConfig(const ModelProfile& profile, int gpus_per_node, int max_gpus,
                            Rng& rng) {
  std::vector<int> valid;
  for (int k = 1; k <= max_gpus; ++k) {
    const double speedup = TrueSpeedup(profile, k, gpus_per_node, kTuningProgress);
    const double fraction = speedup / static_cast<double>(k);
    if (fraction >= 0.5 && fraction <= 0.8) {
      valid.push_back(k);
    }
  }
  JobConfig config;
  if (valid.empty()) {
    // Model does not scale into the 50%-80% band anywhere; a rational user
    // runs it on a single GPU.
    config.num_gpus = 1;
  } else {
    config.num_gpus =
        valid[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(valid.size()) - 1))];
  }
  config.batch_size =
      OptimalBatchForGpus(profile, config.num_gpus, gpus_per_node, kTuningProgress);
  return config;
}

JobConfig SampleUserConfig(const ModelProfile& profile, int gpus_per_node, int max_gpus,
                           Rng& rng) {
  // Philly-style request-size distribution: dominated by single-GPU asks.
  static const int kSizes[] = {1, 2, 4, 8, 16};
  const std::vector<double> weights = {0.70, 0.10, 0.12, 0.06, 0.02};
  JobConfig config;
  config.num_gpus = std::min(kSizes[rng.WeightedIndex(weights)], max_gpus);
  const long optimal =
      OptimalBatchForGpus(profile, config.num_gpus, gpus_per_node, kTuningProgress);
  // Within a factor of 2 of the most efficient batch size (log-uniform).
  const double factor = std::exp2(rng.Uniform(-1.0, 1.0));
  const BatchLimits limits = profile.Limits();
  const long scaled = std::lround(static_cast<double>(optimal) * factor);
  config.batch_size =
      std::clamp(scaled, limits.min_batch, limits.MaxFeasible(config.num_gpus));
  return config;
}

std::vector<JobSpec> GenerateTrace(const TraceOptions& options) {
  Rng rng(options.seed);
  const int num_jobs =
      std::max(1, static_cast<int>(std::lround(options.num_jobs * options.load_factor)));

  std::vector<double> hour_weights(8);
  for (int h = 0; h < 8; ++h) {
    hour_weights[static_cast<size_t>(h)] = WindowHourWeight(h);
  }
  const double hour_span = options.duration / 8.0;

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<size_t>(num_jobs));
  for (int i = 0; i < num_jobs; ++i) {
    JobSpec spec;
    spec.model = SampleModelKind(rng);
    const size_t hour = rng.WeightedIndex(hour_weights);
    spec.submit_time = (static_cast<double>(hour) + rng.NextDouble()) * hour_span;
    const ModelProfile& profile = GetModelProfile(spec.model);
    spec.user_configured = rng.Bernoulli(options.user_configured_fraction);
    const JobConfig config =
        spec.user_configured
            ? SampleUserConfig(profile, options.gpus_per_node, options.max_gpus, rng)
            : SampleTunedConfig(profile, options.gpus_per_node, options.max_gpus, rng);
    spec.requested_gpus = config.num_gpus;
    spec.batch_size = config.batch_size;
    jobs.push_back(spec);
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].job_id = i;
  }
  return jobs;
}

std::vector<JobSpec> GenerateTopologyTrace(const TopologyTraceOptions& options) {
  std::vector<JobSpec> jobs = GenerateTrace(options.base);
  // Dedicated stream: changing sync_heavy_fraction perturbs only the redrawn
  // jobs, never the base trace's arrivals or the untouched jobs' configs.
  Rng rng(options.base.seed ^ 0x7090109BULL);
  const int gpus_per_node = std::max(options.base.gpus_per_node, 1);
  const int lo = gpus_per_node + 1;  // At least two nodes: sync is exercised.
  const int hi = std::max(lo, std::min(options.base.max_gpus, 4 * gpus_per_node));
  for (JobSpec& job : jobs) {
    if (!rng.Bernoulli(options.sync_heavy_fraction)) {
      continue;
    }
    job.model = rng.Bernoulli(0.5) ? ModelKind::kYoloV3Voc : ModelKind::kDeepSpeech2;
    job.user_configured = false;
    job.requested_gpus = static_cast<int>(rng.UniformInt(lo, hi));
    job.batch_size = OptimalBatchForGpus(GetModelProfile(job.model), job.requested_gpus,
                                         gpus_per_node, kTuningProgress);
  }
  return jobs;
}

std::vector<JobSpec> GenerateHyperscaleTrace(const HyperTraceOptions& options) {
  const size_t num_jobs = static_cast<size_t>(std::max(1L, options.num_jobs));
  const long cluster_gpus =
      static_cast<long>(options.num_nodes) * std::max(1, options.gpus_per_node);
  const int max_gpus = static_cast<int>(
      std::max(1L, std::min(static_cast<long>(options.max_request_gpus), cluster_gpus)));

  // Per-model configuration menus, precomputed once so the per-job work is a
  // handful of RNG draws and table lookups instead of a speedup-table scan.
  // SampleTunedConfig / SampleUserConfig draw from exactly these sets, just
  // recomputed per call.
  struct ModelMenu {
    std::vector<int> tuned_gpus;    // 50%-80% band GPU counts (Sec. 5.2).
    std::vector<long> tuned_batch;  // Optimal batch per tuned_gpus entry.
    std::vector<int> user_gpus;     // Clamped Philly request sizes.
    std::vector<long> user_batch;   // Optimal batch per user_gpus entry.
  };
  static const int kUserSizes[] = {1, 2, 4, 8, 16};
  std::array<ModelMenu, kNumModelKinds> menus;
  for (size_t m = 0; m < kNumModelKinds; ++m) {
    const ModelProfile& profile = GetModelProfile(kModelOrder[m]);
    ModelMenu& menu = menus[m];
    for (int k = 1; k <= max_gpus; ++k) {
      const double speedup = TrueSpeedup(profile, k, options.gpus_per_node, kTuningProgress);
      if (const double fraction = speedup / static_cast<double>(k);
          fraction >= 0.5 && fraction <= 0.8) {
        menu.tuned_gpus.push_back(k);
      }
    }
    if (menu.tuned_gpus.empty()) {
      menu.tuned_gpus.push_back(1);
    }
    for (int k : menu.tuned_gpus) {
      menu.tuned_batch.push_back(
          OptimalBatchForGpus(profile, k, options.gpus_per_node, kTuningProgress));
    }
    for (int size : kUserSizes) {
      const int k = std::min(size, max_gpus);
      menu.user_gpus.push_back(k);
      menu.user_batch.push_back(
          OptimalBatchForGpus(profile, k, options.gpus_per_node, kTuningProgress));
    }
  }

  // Fig. 6's diurnal day shape tiled across the whole horizon, anchored at
  // the paper's window start so the first 8 hours match GenerateTrace.
  const double duration = std::max(options.duration, 3600.0);
  const int hours = std::max(1, static_cast<int>(std::ceil(duration / 3600.0)));
  std::vector<double> hour_weights(static_cast<size_t>(hours));
  for (int h = 0; h < hours; ++h) {
    hour_weights[static_cast<size_t>(h)] = DiurnalWeight24(kWindowStart + h);
  }

  const std::vector<double> user_weights = {0.70, 0.10, 0.12, 0.06, 0.02};
  std::vector<JobSpec> jobs(num_jobs);
  ThreadPool pool(options.threads);
  pool.ParallelFor(0, num_jobs, [&](size_t i) {
    Rng rng(PerJobSeed(options.seed, static_cast<uint64_t>(i)));
    JobSpec& spec = jobs[i];
    spec.job_id = i;  // Pre-sort identity; doubles as the sort tiebreak.
    const size_t model_index = SampleModelIndex(rng);
    spec.model = kModelOrder[model_index];
    const size_t hour = rng.WeightedIndex(hour_weights);
    spec.submit_time =
        std::min((static_cast<double>(hour) + rng.NextDouble()) * 3600.0, duration);
    spec.user_configured = rng.Bernoulli(options.user_configured_fraction);
    const ModelMenu& menu = menus[model_index];
    if (spec.user_configured) {
      const size_t pick = rng.WeightedIndex(user_weights);
      spec.requested_gpus = menu.user_gpus[pick];
      const ModelProfile& profile = GetModelProfile(spec.model);
      const double factor = std::exp2(rng.Uniform(-1.0, 1.0));
      const BatchLimits limits = profile.Limits();
      const long scaled =
          std::lround(static_cast<double>(menu.user_batch[pick]) * factor);
      spec.batch_size =
          std::clamp(scaled, limits.min_batch, limits.MaxFeasible(spec.requested_gpus));
    } else {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(menu.tuned_gpus.size()) - 1));
      spec.requested_gpus = menu.tuned_gpus[pick];
      spec.batch_size = menu.tuned_batch[pick];
    }
  });

  std::sort(jobs.begin(), jobs.end(), [](const JobSpec& a, const JobSpec& b) {
    // job_id tiebreak: equal submit instants keep sampling order, so the
    // sort (and thus the emitted trace) is deterministic.
    return a.submit_time != b.submit_time ? a.submit_time < b.submit_time
                                          : a.job_id < b.job_id;
  });
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].job_id = i;
  }
  return jobs;
}

}  // namespace pollux
