// Ground-truth workload models (paper Table 1).
//
// The paper's simulator replays throughput and gradient-noise-scale
// measurements of five real DL training jobs. We cannot train those models
// here, so each workload carries a hidden ground truth with the same
// structure the paper validates:
//   * a ThroughputParams set ("true theta_sys") driving actual job speed,
//     which PolluxAgent must re-estimate online from noisy observations;
//   * a GnsCurve phi(progress) reproducing the published shape of the
//     gradient noise scale: growing ~10x over training, with multiplicative
//     jumps at learning-rate decay points (Fig. 2a).
//
// Job progress is accounted in reference examples: a job finishes after
// processing target_epochs * dataset_size examples at the reference batch
// size m0; running at batch m > m0 earns progress at rate
// throughput * EFFICIENCY(m).

#ifndef POLLUX_WORKLOAD_MODEL_PROFILE_H_
#define POLLUX_WORKLOAD_MODEL_PROFILE_H_

#include <string>
#include <vector>

#include "core/rack_model.h"
#include "core/throughput_model.h"
#include "core/types.h"

namespace pollux {

// The five models of Table 1.
enum class ModelKind {
  kResNet50ImageNet,  // Image classification, XLarge.
  kYoloV3Voc,         // Object detection, Large.
  kDeepSpeech2,       // Speech recognition, Medium.
  kResNet18Cifar10,   // Image classification, Small.
  kNeuMFMovieLens,    // Collaborative filtering, Small.
};

// GPU-time categories from the Microsoft trace analysis (Sec. 5.1).
enum class JobCategory {
  kSmall,   // 0 - 1 GPU-hours.
  kMedium,  // 1 - 10 GPU-hours.
  kLarge,   // 10 - 100 GPU-hours.
  kXLarge,  // 100 - 1000 GPU-hours.
};

// Piecewise-geometric gradient-noise-scale trajectory over training progress.
struct GnsCurve {
  double phi_start = 100.0;  // phi at 0% progress.
  double phi_end = 1000.0;   // phi at 100% progress (before decay boosts).
  // Progress fractions at which the learning rate is decayed; each passage
  // multiplies phi by `decay_boost` (Fig. 2a's jumps at epochs 30/60).
  std::vector<double> decay_points;
  double decay_boost = 1.0;

  // phi at the given progress fraction (clamped to [0, 1]).
  double PhiAt(double progress_fraction) const;
};

struct ModelProfile {
  std::string name;
  ModelKind kind = ModelKind::kResNet18Cifar10;
  JobCategory category = JobCategory::kSmall;

  // Hidden ground truth for actual job speed.
  ThroughputParams true_params;
  GnsCurve gns;

  // User-facing training configuration.
  long base_batch_size = 128;  // m0.
  double base_lr = 0.1;        // eta_0.
  long max_batch_per_gpu = 1024;
  long max_batch_total = 8192;

  // Work to completion, in reference examples.
  double dataset_size = 50000.0;
  double target_epochs = 30.0;

  double TotalExamples() const { return dataset_size * target_epochs; }
  BatchLimits Limits() const;

  // True iteration time / throughput / efficiency / goodput at the given
  // configuration and progress (progress only affects efficiency via phi).
  double TrueIterTime(const Placement& placement, long batch_size) const;
  // Topology-aware ground truth (DESIGN.md §14): the node-tier sync pair
  // stretched by rack_link_factor supplies the rack tier (gradient compute is
  // unchanged), and the whole iteration is paced by gpu_scale — the slowest
  // GPU generation's throughput multiple relative to the T4-class baseline
  // the profiles are calibrated for. With R <= 1 and gpu_scale = 1 this is
  // exactly TrueIterTime.
  double TrueRackIterTime(const RackPlacement& placement, long batch_size,
                          double rack_link_factor, double gpu_scale) const;
  double TrueThroughput(const Placement& placement, long batch_size) const;
  double TrueEfficiency(long batch_size, double progress_fraction) const;
  double TrueGoodput(const Placement& placement, long batch_size,
                     double progress_fraction) const;
};

// Registry of the five Table-1 profiles (static storage, never freed).
const ModelProfile& GetModelProfile(ModelKind kind);
const std::vector<ModelKind>& AllModelKinds();
const char* ModelKindName(ModelKind kind);
const char* JobCategoryName(JobCategory category);

}  // namespace pollux

#endif  // POLLUX_WORKLOAD_MODEL_PROFILE_H_
