#include "workload/trace_io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

namespace pollux {
namespace {

constexpr char kHeader[] = "job_id,model,submit_time,requested_gpus,batch_size,user_configured";

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) {
    fields.push_back(field);
  }
  if (!line.empty() && line.back() == ',') {
    fields.emplace_back();
  }
  return fields;
}

bool ParseDouble(const std::string& text, double* value) {
  char* end = nullptr;
  errno = 0;
  *value = std::strtod(text.c_str(), &end);
  // Overflowing values (errno ERANGE) are rejected rather than silently
  // clamped to HUGE_VAL/0; NaN/inf literals are rejected by the callers'
  // range checks via std::isfinite.
  return end != text.c_str() && *end == '\0' && errno != ERANGE;
}

bool ParseLong(const std::string& text, long* value) {
  char* end = nullptr;
  errno = 0;
  *value = std::strtol(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0' && errno != ERANGE;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

std::optional<ModelKind> ModelKindFromName(const std::string& name) {
  for (ModelKind kind : AllModelKinds()) {
    if (name == ModelKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

void WriteTraceCsv(std::ostream& out, const std::vector<JobSpec>& jobs) {
  out << kHeader << '\n';
  // max_digits10: written traces round-trip doubles bit-exactly, which the
  // snapshot-embedded traces (sim/checkpoint.h) rely on for byte-identical
  // resumes.
  out.precision(17);
  for (const auto& job : jobs) {
    out << job.job_id << ',' << ModelKindName(job.model) << ',' << job.submit_time << ','
        << job.requested_gpus << ',' << job.batch_size << ','
        << (job.user_configured ? 1 : 0) << '\n';
  }
}

std::optional<std::vector<JobSpec>> ReadTraceCsv(std::istream& in, std::string* error) {
  std::string line;
  if (!std::getline(in, line)) {
    Fail(error, "empty input");
    return std::nullopt;
  }
  // Tolerate trailing carriage returns from Windows-authored files.
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  if (line != kHeader) {
    Fail(error, "unexpected header: " + line);
    return std::nullopt;
  }

  std::vector<JobSpec> jobs;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> fields = SplitCsvLine(line);
    const std::string where = "line " + std::to_string(line_number);
    if (fields.size() != 6) {
      Fail(error, where + ": expected 6 fields, got " + std::to_string(fields.size()));
      return std::nullopt;
    }
    JobSpec job;
    long id = 0;
    long gpus = 0;
    long batch = 0;
    long user = 0;
    double submit = 0.0;
    if (!ParseLong(fields[0], &id) || id < 0) {
      Fail(error, where + ": bad job_id");
      return std::nullopt;
    }
    const auto model = ModelKindFromName(fields[1]);
    if (!model.has_value()) {
      Fail(error, where + ": unknown model '" + fields[1] + "'");
      return std::nullopt;
    }
    if (!ParseDouble(fields[2], &submit) || !std::isfinite(submit) || submit < 0.0) {
      Fail(error, where + ": bad submit_time");
      return std::nullopt;
    }
    if (!ParseLong(fields[3], &gpus) || gpus < 1) {
      Fail(error, where + ": bad requested_gpus");
      return std::nullopt;
    }
    if (!ParseLong(fields[4], &batch) || batch < 1) {
      Fail(error, where + ": bad batch_size");
      return std::nullopt;
    }
    if (!ParseLong(fields[5], &user) || (user != 0 && user != 1)) {
      Fail(error, where + ": bad user_configured flag");
      return std::nullopt;
    }
    job.job_id = static_cast<uint64_t>(id);
    job.model = *model;
    job.submit_time = submit;
    job.requested_gpus = static_cast<int>(gpus);
    job.batch_size = batch;
    job.user_configured = user == 1;
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace pollux
