// Scenario: a shared research cluster (paper Sec. 1).
//
// A day's worth of DL jobs — image classifiers, a speech model, a
// recommender — arrive at a 4-node x 4-GPU cluster. The same trace is run
// under Pollux (co-adaptive) and Tiresias (static user requests) to show
// where the goodput-driven scheduler wins: faster completions, higher
// statistical efficiency, and no reliance on users picking GPU counts.
//
// Build and run:  ./cluster_scheduling [--jobs N] [--seed S]

#include <cstdio>
#include <iostream>

#include "baselines/tiresias.h"
#include "sim/pollux_policy.h"
#include "sim/simulator.h"
#include "util/csv.h"
#include "util/flags.h"
#include "workload/trace_gen.h"

int main(int argc, char** argv) {
  using namespace pollux;

  FlagParser flags;
  flags.DefineInt("jobs", 24, "number of job submissions");
  flags.DefineInt("seed", 7, "trace seed");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  TraceOptions trace_options;
  trace_options.num_jobs = static_cast<int>(flags.GetInt("jobs"));
  trace_options.duration = 2.0 * 3600.0;
  trace_options.max_gpus = 16;
  trace_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const auto trace = GenerateTrace(trace_options);
  std::printf("generated %zu jobs over %.0f hours\n", trace.size(),
              trace_options.duration / 3600.0);

  SimOptions sim_options;
  sim_options.cluster = ClusterSpec::Homogeneous(4, 4);
  sim_options.seed = trace_options.seed;

  SchedConfig sched_config;
  sched_config.ga.population_size = 32;
  sched_config.ga.generations = 20;
  PolluxPolicy pollux(sim_options.cluster, sched_config);
  const SimResult pollux_result = Simulator(sim_options, trace, &pollux).Run();

  TiresiasPolicy tiresias;
  const SimResult tiresias_result = Simulator(sim_options, trace, &tiresias).Run();

  TablePrinter table({"policy", "avg JCT", "p99 JCT", "makespan", "stat. eff."});
  for (const auto& [name, result] :
       {std::pair<const char*, const SimResult*>{"pollux", &pollux_result},
        std::pair<const char*, const SimResult*>{"tiresias", &tiresias_result}}) {
    const Summary jct = result->JctSummary();
    table.AddRow({name, FormatDuration(jct.mean), FormatDuration(jct.p99),
                  FormatDuration(result->makespan),
                  FormatDouble(100.0 * result->AvgClusterEfficiency(), 0) + "%"});
  }
  table.Print(std::cout);

  std::printf("\nper-job outcomes under Pollux:\n");
  TablePrinter jobs_table({"job", "model", "JCT", "restarts", "avg eff"});
  for (const auto& job : pollux_result.jobs) {
    jobs_table.AddRow({std::to_string(job.job_id), ModelKindName(job.model),
                       FormatDuration(job.Jct()), std::to_string(job.num_restarts),
                       FormatDouble(job.avg_efficiency, 2)});
  }
  jobs_table.Print(std::cout);
  return 0;
}
