// Scenario: integrating Pollux's job-level machinery with a *real* training
// loop (the role PolluxAgent plays inside PyTorch in Sec. 4.3).
//
// We train a small MLP on synthetic data with minidl's data-parallel SGD.
// The gradient noise scale is estimated from actual per-replica gradients,
// AdaScale adapts the learning rate as the batch size grows, and the
// PolluxAgent fits a throughput model from measured step times — everything
// a cluster scheduler needs, produced by a live training loop.
//
// Build and run:  ./adaptive_training

#include <chrono>
#include <cstdio>

#include "core/agent.h"
#include "core/session.h"
#include "minidl/trainer.h"

int main() {
  using namespace pollux;
  using Clock = std::chrono::steady_clock;

  const Dataset data = MakeSyntheticRegression(/*n=*/4096, /*dim=*/16, /*hidden_units=*/8,
                                               /*noise_stddev=*/0.5, /*seed=*/11);
  Mlp model(/*input_dim=*/16, /*hidden_units=*/12, /*seed=*/13);

  TrainerOptions options;
  options.base_batch_size = 32;  // m0.
  options.base_lr = 0.05;        // eta_0.
  options.replicas = 4;          // Simulated data-parallel workers.
  options.seed = 17;
  DataParallelTrainer trainer(&model, &data, options);

  BatchLimits limits;
  limits.min_batch = options.base_batch_size;
  limits.max_batch_total = 1024;
  limits.max_batch_per_gpu = 256;
  PolluxAgent agent(/*job_id=*/1, options.base_batch_size, options.base_lr, limits);
  agent.NotifyAllocation(Placement{options.replicas, 1});

  std::printf("%6s %10s %8s %8s %10s %12s\n", "step", "loss", "batch", "phi", "gain r_t",
              "adascale lr");
  long batch = options.base_batch_size;
  for (int step = 1; step <= 400; ++step) {
    const auto t0 = Clock::now();
    const double loss = trainer.Step(batch);
    const double step_seconds = std::chrono::duration<double>(Clock::now() - t0).count();

    // Feed the agent exactly what a framework hook would feed it: the step
    // time and the gradient moments the trainer just estimated.
    agent.RecordIteration(Placement{options.replicas, 1}, batch, step_seconds);
    agent.RecordGradientStats(GnsSample{trainer.adascale().tracker().cov_trace(),
                                        trainer.adascale().tracker().grad_sqnorm()});

    if (step % 80 == 0) {
      std::printf("%6d %10.4f %8ld %8.1f %10.3f %12.5f\n", step, loss, batch,
                  trainer.adascale().phi(), trainer.last_gain(),
                  trainer.last_learning_rate());
      // Grow the batch like PolluxAgent would when more resources arrive;
      // AdaScale keeps statistical progress comparable.
      batch = std::min<long>(batch * 2, limits.max_batch_total);
    }
  }

  std::printf("\nfinal full-dataset loss: %.4f\n", trainer.FullLoss());
  std::printf("real steps: %ld, scale-invariant (m0-equivalent) steps: %.0f\n",
              trainer.steps(), trainer.ScaleInvariantIterations());

  const AgentReport report = agent.MakeReport();
  std::printf("agent-fitted step-time model: alpha=%.2es beta=%.2es/example (from %zu configs)\n",
              report.model.params().alpha_grad, report.model.params().beta_grad,
              agent.distinct_configurations());
  std::printf("statistical efficiency the scheduler would predict at batch 1024: %.0f%%\n",
              100.0 * report.model.EfficiencyAt(1024.0));

  // --- The same integration, via the PolluxSession facade. ---
  // A production loop only needs BeginStep/EndStep; the session handles
  // timing, estimator selection, AdaScale, and batch recommendations.
  std::printf("\nPolluxSession facade over a fresh model:\n");
  Mlp session_model(16, 12, 13);
  DataParallelTrainer session_trainer(&session_model, &data, options);
  SessionOptions session_options;
  session_options.job_id = 2;
  session_options.base_batch_size = options.base_batch_size;
  session_options.base_lr = options.base_lr;
  session_options.limits = limits;
  session_options.report_every_steps = 100;
  PolluxSession session(session_options);
  session.SetPlacement(Placement{options.replicas, 1});
  long session_batch = options.base_batch_size;
  for (int step = 1; step <= 300; ++step) {
    session.BeginStep();
    session_trainer.Step(session_batch);
    // Hand the session the per-replica gradients a framework hook would see.
    const auto decision =
        session.EndStep(session_trainer.last_replica_gradients(), session_batch);
    if (decision.reported) {
      std::printf("  step %3d: recommended batch %ld, lr %.4f, phi %.1f\n", step,
                  decision.recommended_batch_size, decision.learning_rate, session.phi());
      session_batch = decision.recommended_batch_size;
    }
  }
  std::printf("session steps: %ld, final loss: %.4f\n", session.steps(),
              session_trainer.FullLoss());
  return 0;
}
