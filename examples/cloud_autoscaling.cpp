// Scenario: training one large model in the cloud (paper Sec. 4.2.2/5.3.3).
//
// A single ImageNet-scale job runs on an elastic cluster. Pollux's
// goodput-driven autoscaler provisions few nodes while large batches are
// statistically inefficient (early training) and scales out as the gradient
// noise scale grows — paying for GPUs only when they convert into real
// progress.
//
// Build and run:  ./cloud_autoscaling [--max_nodes N]

#include <cstdio>
#include <iostream>

#include "sim/autoscale.h"
#include "sim/pollux_policy.h"
#include "sim/simulator.h"
#include "util/csv.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace pollux;

  FlagParser flags;
  flags.DefineInt("max_nodes", 16, "largest cluster the autoscaler may request");
  flags.DefineInt("seed", 1, "simulation seed");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  JobSpec job;
  job.job_id = 0;
  job.model = ModelKind::kResNet50ImageNet;
  job.batch_size = GetModelProfile(job.model).base_batch_size;
  job.requested_gpus = 1;

  SimOptions options;
  options.cluster = ClusterSpec::Homogeneous(1, 4);
  options.gpus_per_node = 4;
  options.autoscale_interval = 300.0;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  SchedConfig sched_config;
  sched_config.ga.population_size = 20;
  sched_config.ga.generations = 10;
  PolluxPolicy policy(options.cluster, sched_config);

  AutoscaleConfig autoscale;
  autoscale.min_nodes = 1;
  autoscale.max_nodes = static_cast<int>(flags.GetInt("max_nodes"));
  GoodputAutoscaler autoscaler(autoscale, &policy);

  const SimResult result = Simulator(options, {job}, &policy, &autoscaler).Run();

  TablePrinter table({"time", "nodes", "stat. eff", "batch", "utility"});
  int last_nodes = -1;
  for (const auto& sample : result.timeline) {
    if (sample.nodes == last_nodes || sample.running_jobs == 0) {
      continue;  // Only print scale events.
    }
    last_nodes = sample.nodes;
    table.AddRow({FormatDuration(sample.time), std::to_string(sample.nodes),
                  FormatDouble(sample.mean_efficiency, 2),
                  std::to_string(sample.max_batch_size), FormatDouble(sample.utility, 2)});
  }
  table.Print(std::cout);

  std::printf("\ntraining completed in %s using %.0f node-hours\n",
              FormatDuration(result.makespan).c_str(), result.node_seconds / 3600.0);
  std::printf("(a fixed %d-node cluster would have cost %.0f node-hours)\n",
              autoscale.max_nodes,
              result.makespan / 3600.0 * autoscale.max_nodes);
  return 0;
}
