// Quickstart: the Pollux core API in five steps.
//
//   1. Profile a job:   collect (placement, batch size, iteration time).
//   2. Fit theta_sys:   FitThroughputParams (RMSLE + bounded L-BFGS).
//   3. Track the GNS:   GnsTracker over gradient moment samples.
//   4. Build goodput:   GoodputModel(theta_sys, phi, m0) and tune the batch
//                       size for any allocation (golden-section search).
//   5. Schedule:        PolluxSched turns per-job goodput functions into a
//                       cluster-wide allocation with its genetic algorithm.
//
// Build and run:  ./quickstart

#include <cstdio>

#include "core/agent.h"
#include "core/sched.h"

namespace {

// A pretend job: ground truth used only to synthesize "measurements".
const pollux::ThroughputParams kTrueParams{0.03, 5e-4, 0.02, 0.001, 0.09, 0.004, 2.0};

}  // namespace

int main() {
  using namespace pollux;

  // --- 1 & 2 & 3: PolluxAgent bundles profiling, fitting, and GNS tracking.
  BatchLimits limits;
  limits.min_batch = 128;       // m0: the user's initial batch size.
  limits.max_batch_total = 16384;
  limits.max_batch_per_gpu = 1024;
  PolluxAgent agent(/*job_id=*/1, /*base_batch_size=*/128, /*base_lr=*/0.1, limits);

  for (const Placement& placement :
       {Placement{1, 1}, Placement{2, 1}, Placement{4, 1}, Placement{8, 2}}) {
    agent.NotifyAllocation(placement);
    for (long m : {128L, 256L, 512L, 1024L}) {
      // A real integration measures wall-clock iteration time; here we ask
      // the ground truth.
      agent.RecordIteration(placement, m, IterTime(kTrueParams, placement, double(m)));
    }
  }
  for (int i = 0; i < 50; ++i) {
    // One gradient-moment sample per iteration; normally produced by
    // EstimateGnsFromReplicas or EstimateGnsDifferenced on real gradients.
    agent.RecordGradientStats(GnsSample{/*cov_trace=*/900.0, /*grad_sqnorm=*/1.0});
  }

  const AgentReport report = agent.MakeReport();
  std::printf("fitted theta_sys: alpha_grad=%.3fs beta_grad=%.2es gamma=%.2f, phi=%.0f\n",
              report.model.params().alpha_grad, report.model.params().beta_grad,
              report.model.params().gamma, report.model.phi());

  // --- 4: goodput-optimal batch size for the current allocation (Eqn. 13).
  const auto choice = agent.TuneBatchSize(Placement{8, 2});
  std::printf("on 8 GPUs: batch %ld -> goodput %.0f ex/s (efficiency %.0f%%), AdaScale lr %.3f\n",
              choice.batch_size, choice.goodput, 100.0 * choice.efficiency,
              agent.LearningRateAt(choice.batch_size));

  // --- 5: cluster-wide scheduling. Three copies of the job compete for a
  // 2-node x 4-GPU cluster; PolluxSched maximizes the weighted speedup sum.
  SchedConfig config;
  config.ga.population_size = 32;
  config.ga.generations = 20;
  PolluxSched sched(ClusterSpec::Homogeneous(2, 4), config);
  std::vector<SchedJobReport> reports;
  for (uint64_t id = 1; id <= 3; ++id) {
    SchedJobReport job;
    job.agent = report;
    job.agent.job_id = id;
    job.agent.max_gpus_cap = 8;
    reports.push_back(job);
  }
  const auto allocations = sched.Schedule(reports);
  for (const auto& [id, row] : allocations) {
    std::printf("job %lu gets GPUs per node: [", static_cast<unsigned long>(id));
    for (size_t n = 0; n < row.size(); ++n) {
      std::printf("%s%d", n ? ", " : "", row[n]);
    }
    std::printf("]\n");
  }
  std::printf("cluster utility: %.2f (Eqn. 17)\n", sched.last_utility());
  return 0;
}
